//! Property-based kernel generation and a builder-chain authoring API.
//!
//! Two complementary front-ends over the same [`crate::dsl`] (DESIGN.md §13):
//!
//! 1. **Seed-driven strategies** on the vendored `proptest` that emit *valid*
//!    [`RegionSource`] programs — varied loop nests, arithmetic mixes, memory
//!    footprints, and scalability limits — for the out-of-distribution
//!    generalization gate. Every kernel drawn from [`corpus`] lowers,
//!    verifies, and graph-encodes without panicking; the generator never
//!    references an undeclared array, size parameter, or loop variable.
//! 2. **Builder chains** ([`kernel`], [`for_param`]) for hand-written cases:
//!    fluent factory functions in the husako style (no `new`, each call
//!    returns the builder), finishing with a plain [`RegionSource`].
//!
//! # Seed scheme
//!
//! `corpus(seed, n)` derives one independent random stream per kernel from
//! the string `pnp-gen-v1/<seed>/<index>` (FNV-1a → ChaCha8, the vendored
//! proptest's [`TestRng::deterministic`]). Consequences:
//!
//! * the same `(seed, index)` always yields the byte-identical kernel, on
//!   every host and worker count — the corpus is cacheable under a
//!   seed-fingerprinted `pnp-store` key;
//! * the corpus is *prefix-stable*: `corpus(s, 8)` begins with exactly
//!   `corpus(s, 4)` — growing the evaluation set never changes existing
//!   kernels.

use crate::dsl::{
    ArrayDecl, ArrayRef, BinOp, CmpOp, Expr, HelperFn, IndexExpr, LoopBound, LoopNest, MathFn,
    OmpPragma, OmpSchedule, RegionSource, Stmt,
};
use proptest::{Strategy, TestRng};
use serde::{Deserialize, Serialize};

/// One generated kernel plus the workload knobs a benchmark provider needs to
/// derive its analytic profile (problem sizes, scalability ceiling, serial
/// fraction). The `ir` crate knows nothing about machines, so these are plain
/// data; `pnp-benchmarks::synthetic` maps them onto `ProblemSizes` /
/// `KernelTraits`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratedKernel {
    /// The kernel's DSL source (one OpenMP region).
    pub source: RegionSource,
    /// Concrete value per size parameter, in `source.size_params` order.
    pub sizes: Vec<(String, i64)>,
    /// Maximum useful parallelism (`usize::MAX` = unlimited) — exercises the
    /// sentinel that broke vendored-serde in PR 5.
    pub scalability_limit: usize,
    /// Fraction of inherently serial work.
    pub serial_fraction: f64,
}

/// A proptest [`Strategy`] emitting whole [`GeneratedKernel`]s. All emitted
/// kernels use `tag` as their name stem, so corpus-level name uniqueness is
/// the caller's concern (per-index tags in [`corpus`]).
pub struct KernelStrategy {
    tag: String,
}

impl Strategy for KernelStrategy {
    type Value = GeneratedKernel;

    fn generate(&self, rng: &mut TestRng) -> GeneratedKernel {
        generate_kernel(&self.tag, rng)
    }
}

/// Strategy producing valid generated kernels named after `tag`.
pub fn arb_kernel(tag: &str) -> KernelStrategy {
    KernelStrategy {
        tag: tag.to_string(),
    }
}

/// Strategy producing only the [`RegionSource`] of a generated kernel.
pub fn arb_region_source(tag: &str) -> impl Strategy<Value = RegionSource> {
    arb_kernel(tag).prop_map(|k| k.source)
}

/// The deterministic generated corpus: `count` kernels for `seed`, each drawn
/// from its own `pnp-gen-v1/<seed>/<index>` stream (see the module docs for
/// the determinism and prefix-stability contract).
pub fn corpus(seed: u64, count: usize) -> Vec<GeneratedKernel> {
    (0..count)
        .map(|i| {
            let mut rng = TestRng::deterministic(&format!("pnp-gen-v1/{seed}/{i}"));
            generate_kernel(&format!("gen{seed:08x}_{i:03}"), &mut rng)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Random draws (thin wrappers over the vendored proptest range strategies).
// ---------------------------------------------------------------------------

fn draw(rng: &mut TestRng, lo: usize, hi: usize) -> usize {
    if lo + 1 >= hi {
        lo
    } else {
        (lo..hi).generate(rng)
    }
}

fn draw_f(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    (lo..hi).generate(rng)
}

fn chance(rng: &mut TestRng, p: f64) -> bool {
    (0.0f64..1.0).generate(rng) < p
}

fn pick<'a, T>(rng: &mut TestRng, options: &'a [T]) -> &'a T {
    &options[draw(rng, 0, options.len())]
}

fn pick_arith(rng: &mut TestRng) -> BinOp {
    *pick(rng, &[BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div])
}

fn pick_binop(rng: &mut TestRng) -> BinOp {
    *pick(
        rng,
        &[
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Min,
            BinOp::Max,
        ],
    )
}

fn pick_math(rng: &mut TestRng) -> MathFn {
    *pick(
        rng,
        &[
            MathFn::Sqrt,
            MathFn::Exp,
            MathFn::Log,
            MathFn::Fabs,
            MathFn::Sin,
            MathFn::Cos,
        ],
    )
}

/// Problem sizes are drawn from a ladder so footprints span KBs to tens of
/// MBs without the generator stumbling into degenerate 1-element arrays.
const SIZE_LADDER: [i64; 10] = [96, 160, 256, 384, 512, 768, 1024, 1536, 2048, 4096];

fn pick_size(rng: &mut TestRng) -> i64 {
    *pick(rng, &SIZE_LADDER)
}

/// Folds `terms` into one expression with random operators, then chains
/// `0..=3` extra unary/scalar operations on top (the "arithmetic mix").
/// Every scalar referenced comes from `scalars` (all declared by the caller).
fn mix_expr(rng: &mut TestRng, mut terms: Vec<Expr>, scalars: &[&str]) -> Expr {
    let mut value = terms.remove(0);
    for t in terms {
        value = Expr::Binary(pick_binop(rng), Box::new(value), Box::new(t));
    }
    for _ in 0..draw(rng, 0, 4) {
        value = match draw(rng, 0, 6) {
            0 => Expr::Math(pick_math(rng), vec![value]),
            1 => Expr::Math(MathFn::Pow, vec![value, Expr::Const(2.0)]),
            2 => Expr::Neg(Box::new(value)),
            3 => Expr::Binary(
                pick_arith(rng),
                Box::new(value),
                Box::new(Expr::Const(draw_f(rng, 0.25, 4.0))),
            ),
            _ => {
                let s = *pick(rng, scalars);
                Expr::Binary(
                    pick_arith(rng),
                    Box::new(value),
                    Box::new(Expr::Scalar(s.into())),
                )
            }
        };
    }
    value
}

fn random_pragma(rng: &mut TestRng) -> OmpPragma {
    OmpPragma {
        schedule: if chance(rng, 0.3) {
            Some(*pick(
                rng,
                &[
                    OmpSchedule::Static,
                    OmpSchedule::Dynamic,
                    OmpSchedule::Guided,
                ],
            ))
        } else {
            None
        },
        reduction: None,
        collapse: 1,
        nowait: chance(rng, 0.15),
    }
}

/// Scalability/serial-fraction knobs shared by every shape class.
fn workload_knobs(rng: &mut TestRng) -> (usize, f64) {
    let limit = if chance(rng, 0.3) {
        draw(rng, 2, 48)
    } else {
        usize::MAX
    };
    let serial = if chance(rng, 0.25) {
        draw_f(rng, 0.01, 0.12)
    } else {
        0.0
    };
    (limit, serial)
}

// ---------------------------------------------------------------------------
// Shape classes. Each emits a structurally different — but always valid —
// kernel family; the class index is the first draw so corpora cover all of
// them.
// ---------------------------------------------------------------------------

fn generate_kernel(tag: &str, rng: &mut TestRng) -> GeneratedKernel {
    let class = draw(rng, 0, 8);
    let (source, sizes) = match class {
        0 => gen_streaming(tag, rng),
        1 => gen_stencil1d(tag, rng),
        2 => gen_reduction(tag, rng),
        3 => gen_elementwise2d(tag, rng),
        4 => gen_contraction(tag, rng),
        5 => gen_triangular(tag, rng),
        6 => gen_helper_call(tag, rng),
        _ => gen_conditional(tag, rng),
    };
    let (scalability_limit, serial_fraction) = workload_knobs(rng);
    GeneratedKernel {
        source,
        sizes,
        scalability_limit,
        serial_fraction,
    }
}

fn source(
    tag: &str,
    pragma: OmpPragma,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<&str>,
    size_params: Vec<&str>,
    helpers: Vec<HelperFn>,
    parallel_loop: LoopNest,
) -> RegionSource {
    RegionSource {
        name: format!("{tag}_r0"),
        pragma,
        arrays,
        scalars: scalars.into_iter().map(String::from).collect(),
        size_params: size_params.into_iter().map(String::from).collect(),
        helpers,
        parallel_loop,
    }
}

/// `OUT[i] = mix(IN0[i], …, INk[i])` — memory-bandwidth-bound streaming.
fn gen_streaming(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let inputs = draw(rng, 1, 4);
    let mut arrays = vec![ArrayDecl::d1("OUT", "N")];
    let mut terms = Vec::new();
    for k in 0..inputs {
        let name = format!("IN{k}");
        arrays.push(ArrayDecl::d1(&name, "N"));
        terms.push(Expr::load1(&name, IndexExpr::var("i")));
    }
    let value = mix_expr(rng, terms, &["alpha", "beta"]);
    let stmt = if chance(rng, 0.3) {
        Stmt::Accumulate {
            target: ArrayRef::d1("OUT", IndexExpr::var("i")),
            op: pick_arith(rng),
            value,
        }
    } else {
        Stmt::Assign {
            target: ArrayRef::d1("OUT", IndexExpr::var("i")),
            value,
        }
    };
    let src = source(
        tag,
        random_pragma(rng),
        arrays,
        vec!["alpha", "beta"],
        vec!["N"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![stmt]),
    );
    let n = pick_size(rng) * 4; // streaming kernels get the largest footprints
    (src, vec![("N".into(), n)])
}

/// `OUT[i] = mix(IN[i-r], …, IN[i+r])` — a 1-D stencil with radius 1..=2.
fn gen_stencil1d(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let radius = draw(rng, 1, 3) as i64;
    let mut terms = Vec::new();
    for off in -radius..=radius {
        terms.push(Expr::load1("IN", IndexExpr::var_plus("i", off)));
    }
    let value = mix_expr(rng, terms, &["alpha"]);
    let src = source(
        tag,
        random_pragma(rng),
        vec![ArrayDecl::d1("OUT", "N"), ArrayDecl::d1("IN", "N")],
        vec!["alpha"],
        vec!["N"],
        vec![],
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::Assign {
                target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                value,
            }],
        ),
    );
    (src, vec![("N".into(), pick_size(rng) * 2)])
}

/// `sum += mix(IN*[i])` under a `reduction(+:sum)` pragma.
fn gen_reduction(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let inputs = draw(rng, 1, 3);
    let mut arrays = Vec::new();
    let mut terms = Vec::new();
    for k in 0..inputs {
        let name = format!("IN{k}");
        arrays.push(ArrayDecl::d1(&name, "N"));
        terms.push(Expr::load1(&name, IndexExpr::var("i")));
    }
    let value = mix_expr(rng, terms, &["alpha"]);
    let pragma = OmpPragma {
        reduction: Some((BinOp::Add, "sum".into())),
        ..random_pragma(rng)
    };
    let src = source(
        tag,
        pragma,
        arrays,
        vec!["alpha"],
        vec!["N"],
        vec![],
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::ScalarAccumulate {
                name: "sum".into(),
                op: BinOp::Add,
                value,
            }],
        ),
    );
    (src, vec![("N".into(), pick_size(rng) * 4)])
}

/// `OUT[i][j] = mix(IN*[i][j])` — a dense 2-D elementwise nest.
fn gen_elementwise2d(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let inputs = draw(rng, 1, 3);
    let mut arrays = vec![ArrayDecl::d2("OUT", "N", "M")];
    let mut terms = Vec::new();
    for k in 0..inputs {
        let name = format!("IN{k}");
        arrays.push(ArrayDecl::d2(&name, "N", "M"));
        terms.push(Expr::load2(&name, IndexExpr::var("i"), IndexExpr::var("j")));
    }
    let value = mix_expr(rng, terms, &["alpha", "beta"]);
    let inner = LoopNest::new(
        "j",
        LoopBound::Param("M".into()),
        vec![Stmt::Assign {
            target: ArrayRef::d2("OUT", IndexExpr::var("i"), IndexExpr::var("j")),
            value,
        }],
    );
    let src = source(
        tag,
        random_pragma(rng),
        arrays,
        vec!["alpha", "beta"],
        vec!["N", "M"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![Stmt::Loop(inner)]),
    );
    let sizes = vec![("N".into(), pick_size(rng)), ("M".into(), pick_size(rng))];
    (src, sizes)
}

/// `OUT[i][j] += A[i][k] ⊗ B[k][j]` — a matmul-like 3-deep contraction with
/// a randomized inner combine.
fn gen_contraction(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let mut value = Expr::Binary(
        if chance(rng, 0.8) {
            BinOp::Mul
        } else {
            BinOp::Add
        },
        Box::new(Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("k"))),
        Box::new(Expr::load2("B", IndexExpr::var("k"), IndexExpr::var("j"))),
    );
    if chance(rng, 0.4) {
        value = Expr::mul(Expr::Scalar("alpha".into()), value);
    }
    let inner_k = LoopNest::new(
        "k",
        LoopBound::Param("K".into()),
        vec![Stmt::Accumulate {
            target: ArrayRef::d2("OUT", IndexExpr::var("i"), IndexExpr::var("j")),
            op: BinOp::Add,
            value,
        }],
    );
    let loop_j = LoopNest::new("j", LoopBound::Param("M".into()), vec![Stmt::Loop(inner_k)]);
    let src = source(
        tag,
        random_pragma(rng),
        vec![
            ArrayDecl::d2("OUT", "N", "M"),
            ArrayDecl::d2("A", "N", "K"),
            ArrayDecl::d2("B", "K", "M"),
        ],
        vec!["alpha"],
        vec!["N", "M", "K"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![Stmt::Loop(loop_j)]),
    );
    let sizes = vec![
        ("N".into(), pick_size(rng) / 2),
        ("M".into(), pick_size(rng) / 2),
        ("K".into(), pick_size(rng) / 2),
    ];
    (src, sizes)
}

/// Triangular nest `for i in 0..N { for j in 0..i(+1) { … } }` over square
/// arrays — the ramp-imbalanced family.
fn gen_triangular(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let inner_bound = if chance(rng, 0.5) {
        LoopBound::Var("i".into())
    } else {
        LoopBound::VarPlus("i".into(), 1)
    };
    let load = if chance(rng, 0.5) {
        Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("j"))
    } else {
        Expr::load2("A", IndexExpr::var("j"), IndexExpr::var("i"))
    };
    let value = mix_expr(rng, vec![load], &["alpha"]);
    let inner = LoopNest::new(
        "j",
        inner_bound,
        vec![Stmt::Assign {
            target: ArrayRef::d2("OUT", IndexExpr::var("i"), IndexExpr::var("j")),
            value,
        }],
    );
    let src = source(
        tag,
        random_pragma(rng),
        vec![ArrayDecl::d2("OUT", "N", "N"), ArrayDecl::d2("A", "N", "N")],
        vec!["alpha"],
        vec!["N"],
        vec![],
        LoopNest::new("i", LoopBound::Param("N".into()), vec![Stmt::Loop(inner)]),
    );
    (src, vec![("N".into(), pick_size(rng))])
}

/// `OUT[i] = helper(IN[i], …)` — a call-heavy kernel whose footprint hides
/// behind an opaque callee (the irregular/Monte-Carlo family).
fn gen_helper_call(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let num_params = draw(rng, 1, 4);
    let body_ops = draw(rng, 2, 12);
    let helper_name = format!("{tag}_helper");
    let mut args = vec![Expr::load1("IN", IndexExpr::var("i"))];
    for p in 1..num_params {
        args.push(if p == 1 {
            Expr::Scalar("alpha".into())
        } else {
            Expr::Const(draw_f(rng, 0.5, 2.0))
        });
    }
    let src = source(
        tag,
        random_pragma(rng),
        vec![ArrayDecl::d1("OUT", "N"), ArrayDecl::d1("IN", "N")],
        vec!["alpha"],
        vec!["N"],
        vec![HelperFn {
            name: helper_name.clone(),
            num_params,
            body_ops,
        }],
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::Assign {
                target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                value: Expr::CallHelper(helper_name, args),
            }],
        ),
    );
    (src, vec![("N".into(), pick_size(rng) * 2)])
}

/// A branchy kernel: `if IN[i] ⋈ thresh { OUT[i] = … } else { OUT[i] = … }`.
fn gen_conditional(tag: &str, rng: &mut TestRng) -> (RegionSource, Vec<(String, i64)>) {
    let cmp = *pick(
        rng,
        &[
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ],
    );
    let then_value = mix_expr(
        rng,
        vec![Expr::load1("IN", IndexExpr::var("i"))],
        &["thresh"],
    );
    let else_body = if chance(rng, 0.7) {
        vec![Stmt::Assign {
            target: ArrayRef::d1("OUT", IndexExpr::var("i")),
            value: Expr::Const(draw_f(rng, -1.0, 1.0)),
        }]
    } else {
        Vec::new() // empty else arms must lower cleanly too
    };
    let src = source(
        tag,
        random_pragma(rng),
        vec![ArrayDecl::d1("OUT", "N"), ArrayDecl::d1("IN", "N")],
        vec!["thresh"],
        vec!["N"],
        vec![],
        LoopNest::new(
            "i",
            LoopBound::Param("N".into()),
            vec![Stmt::If {
                lhs: Expr::load1("IN", IndexExpr::var("i")),
                cmp,
                rhs: Expr::Scalar("thresh".into()),
                then_body: vec![Stmt::Assign {
                    target: ArrayRef::d1("OUT", IndexExpr::var("i")),
                    value: then_value,
                }],
                else_body,
            }],
        ),
    );
    (src, vec![("N".into(), pick_size(rng) * 2)])
}

// ---------------------------------------------------------------------------
// Builder-chain authoring API (the husako idiom: factory functions, fluent
// chains, no `new`).
// ---------------------------------------------------------------------------

/// Starts a kernel description:
///
/// ```
/// use pnp_ir::dsl::{ArrayRef, Expr, IndexExpr};
/// use pnp_ir::gen::{for_param, kernel};
///
/// let region = kernel("saxpy")
///     .size("N")
///     .scalar("a")
///     .array1("X", "N")
///     .array1("Y", "N")
///     .body(for_param("i", "N").assign(
///         ArrayRef::d1("Y", IndexExpr::var("i")),
///         Expr::add(
///             Expr::mul(Expr::Scalar("a".into()), Expr::load1("X", IndexExpr::var("i"))),
///             Expr::load1("Y", IndexExpr::var("i")),
///         ),
///     ));
/// assert_eq!(region.name, "saxpy");
/// assert!(pnp_ir::lower::try_lower_kernel("app", &[region]).is_ok());
/// ```
pub fn kernel(name: &str) -> KernelBuilder {
    KernelBuilder {
        name: name.to_string(),
        pragma: OmpPragma::default(),
        arrays: Vec::new(),
        scalars: Vec::new(),
        size_params: Vec::new(),
        helpers: Vec::new(),
    }
}

/// Fluent builder returned by [`kernel`]; finish with [`KernelBuilder::body`].
pub struct KernelBuilder {
    name: String,
    pragma: OmpPragma,
    arrays: Vec<ArrayDecl>,
    scalars: Vec<String>,
    size_params: Vec<String>,
    helpers: Vec<HelperFn>,
}

impl KernelBuilder {
    /// Sets the schedule clause.
    pub fn schedule(mut self, s: OmpSchedule) -> Self {
        self.pragma.schedule = Some(s);
        self
    }

    /// Adds a `reduction(op:name)` clause.
    pub fn reduction(mut self, op: BinOp, name: &str) -> Self {
        self.pragma.reduction = Some((op, name.to_string()));
        self
    }

    /// Adds the `nowait` clause.
    pub fn nowait(mut self) -> Self {
        self.pragma.nowait = true;
        self
    }

    /// Declares a size parameter.
    pub fn size(mut self, name: &str) -> Self {
        self.size_params.push(name.to_string());
        self
    }

    /// Declares a scalar parameter.
    pub fn scalar(mut self, name: &str) -> Self {
        self.scalars.push(name.to_string());
        self
    }

    /// Declares a 1-D double array.
    pub fn array1(mut self, name: &str, dim: &str) -> Self {
        self.arrays.push(ArrayDecl::d1(name, dim));
        self
    }

    /// Declares a 2-D double array.
    pub fn array2(mut self, name: &str, d0: &str, d1: &str) -> Self {
        self.arrays.push(ArrayDecl::d2(name, d0, d1));
        self
    }

    /// Declares an arbitrary array.
    pub fn array(mut self, decl: ArrayDecl) -> Self {
        self.arrays.push(decl);
        self
    }

    /// Declares a helper callee.
    pub fn helper(mut self, name: &str, num_params: usize, body_ops: usize) -> Self {
        self.helpers.push(HelperFn {
            name: name.to_string(),
            num_params,
            body_ops,
        });
        self
    }

    /// Finishes the kernel with its parallel loop.
    pub fn body(self, parallel_loop: LoopNestBuilder) -> RegionSource {
        RegionSource {
            name: self.name,
            pragma: self.pragma,
            arrays: self.arrays,
            scalars: self.scalars,
            size_params: self.size_params,
            helpers: self.helpers,
            parallel_loop: parallel_loop.done(),
        }
    }
}

/// Starts a loop over `0..param` (the common case).
pub fn for_param(var: &str, param: &str) -> LoopNestBuilder {
    for_bound(var, LoopBound::Param(param.to_string()))
}

/// Starts a loop over a constant trip count.
pub fn for_const(var: &str, trip: i64) -> LoopNestBuilder {
    for_bound(var, LoopBound::Const(trip))
}

/// Starts a triangular loop over `0..outer_var`.
pub fn for_var(var: &str, outer_var: &str) -> LoopNestBuilder {
    for_bound(var, LoopBound::Var(outer_var.to_string()))
}

/// Starts a loop with an explicit bound.
pub fn for_bound(var: &str, bound: LoopBound) -> LoopNestBuilder {
    LoopNestBuilder {
        var: var.to_string(),
        bound,
        body: Vec::new(),
    }
}

/// Fluent loop builder returned by [`for_param`] / [`for_const`] /
/// [`for_var`] / [`for_bound`].
pub struct LoopNestBuilder {
    var: String,
    bound: LoopBound,
    body: Vec<Stmt>,
}

impl LoopNestBuilder {
    /// Appends an arbitrary statement.
    pub fn stmt(mut self, s: Stmt) -> Self {
        self.body.push(s);
        self
    }

    /// Appends `target = value`.
    pub fn assign(self, target: ArrayRef, value: Expr) -> Self {
        self.stmt(Stmt::Assign { target, value })
    }

    /// Appends `target op= value`.
    pub fn accumulate(self, target: ArrayRef, op: BinOp, value: Expr) -> Self {
        self.stmt(Stmt::Accumulate { target, op, value })
    }

    /// Appends `name op= value` on a scalar temporary.
    pub fn scalar_accumulate(self, name: &str, op: BinOp, value: Expr) -> Self {
        self.stmt(Stmt::ScalarAccumulate {
            name: name.to_string(),
            op,
            value,
        })
    }

    /// Nests an inner loop.
    pub fn nested(self, inner: LoopNestBuilder) -> Self {
        let nest = inner.done();
        self.stmt(Stmt::Loop(nest))
    }

    /// Finishes the nest.
    pub fn done(self) -> LoopNest {
        LoopNest {
            var: self.var,
            bound: self.bound,
            body: self.body,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::{lower_kernel, try_lower_kernel};
    use crate::verify::verify_module;

    #[test]
    fn corpus_is_deterministic() {
        let a = corpus(42, 8);
        let b = corpus(42, 8);
        assert_eq!(a, b);
        // Different seeds differ somewhere.
        let c = corpus(43, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn corpus_is_prefix_stable() {
        let long = corpus(7, 10);
        let short = corpus(7, 4);
        assert_eq!(&long[..4], &short[..]);
    }

    #[test]
    fn corpus_names_are_unique() {
        let kernels = corpus(5, 24);
        let mut names: Vec<&str> = kernels.iter().map(|k| k.source.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn every_generated_kernel_lowers_and_verifies() {
        for (i, k) in corpus(0xD15EA5E, 32).iter().enumerate() {
            let m = try_lower_kernel("gen_app", std::slice::from_ref(&k.source))
                .unwrap_or_else(|e| panic!("kernel {i} failed static checks: {e}"));
            assert!(
                verify_module(&m).is_ok(),
                "kernel {i} ({}) fails IR verification: {:?}",
                k.source.name,
                verify_module(&m).unwrap_err()
            );
            // Each size parameter got a concrete, positive size.
            assert_eq!(k.sizes.len(), k.source.size_params.len(), "kernel {i}");
            assert!(k.sizes.iter().all(|(_, v)| *v > 0), "kernel {i}");
            assert!(
                (0.0..1.0).contains(&k.serial_fraction),
                "kernel {i}: serial fraction {}",
                k.serial_fraction
            );
        }
    }

    #[test]
    fn corpus_covers_varied_shapes() {
        let kernels = corpus(1, 24);
        let depths: std::collections::HashSet<usize> =
            kernels.iter().map(|k| k.source.depth()).collect();
        assert!(depths.len() >= 2, "loop-nest depths seen: {depths:?}");
        assert!(
            kernels.iter().any(|k| !k.source.helpers.is_empty()),
            "no helper-calling kernel in 24 draws"
        );
        assert!(
            kernels.iter().any(|k| k.source.pragma.reduction.is_some()),
            "no reduction kernel in 24 draws"
        );
        assert!(
            kernels.iter().any(|k| k.scalability_limit != usize::MAX),
            "no scalability-limited kernel in 24 draws"
        );
        // Memory footprints actually vary.
        let ns: std::collections::HashSet<i64> = kernels
            .iter()
            .flat_map(|k| k.sizes.iter().map(|s| s.1))
            .collect();
        assert!(ns.len() >= 4, "problem sizes seen: {ns:?}");
    }

    #[test]
    fn strategy_front_end_matches_direct_generation() {
        let mut rng1 = TestRng::deterministic("gen-strategy-test");
        let mut rng2 = TestRng::deterministic("gen-strategy-test");
        let via_strategy = arb_kernel("t").generate(&mut rng1);
        let direct = generate_kernel("t", &mut rng2);
        assert_eq!(via_strategy, direct);
    }

    #[test]
    fn builder_chain_authors_a_verifiable_kernel() {
        let region = kernel("gemv")
            .schedule(OmpSchedule::Static)
            .size("N")
            .size("M")
            .scalar("alpha")
            .array2("A", "N", "M")
            .array1("x", "M")
            .array1("y", "N")
            .body(for_param("i", "N").nested(for_param("j", "M").accumulate(
                ArrayRef::d1("y", IndexExpr::var("i")),
                BinOp::Add,
                Expr::mul(
                    Expr::mul(
                        Expr::Scalar("alpha".into()),
                        Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                    ),
                    Expr::load1("x", IndexExpr::var("j")),
                ),
            )));
        assert_eq!(region.depth(), 2);
        let m = lower_kernel("app", &[region]);
        assert!(verify_module(&m).is_ok(), "{:?}", verify_module(&m));
    }

    #[test]
    fn builder_chain_supports_reductions_and_helpers() {
        let region = kernel("energy")
            .reduction(BinOp::Add, "sum")
            .nowait()
            .size("N")
            .array1("P", "N")
            .helper("potential", 2, 5)
            .body(for_param("i", "N").scalar_accumulate(
                "sum",
                BinOp::Add,
                Expr::CallHelper(
                    "potential".into(),
                    vec![Expr::load1("P", IndexExpr::var("i")), Expr::Const(0.5)],
                ),
            ));
        assert!(region.pragma.nowait);
        assert!(region.pragma.reduction.is_some());
        let m = try_lower_kernel("app", &[region]).expect("valid kernel");
        assert!(m.function("potential").is_some());
        assert!(verify_module(&m).is_ok());
    }
}
