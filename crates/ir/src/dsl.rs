//! The kernel DSL: a structured description of an OpenMP parallel region.
//!
//! Benchmarks in `pnp-benchmarks` describe each of their OpenMP regions as a
//! [`RegionSource`] — the analogue of the C source of a
//! `#pragma omp parallel for` region. [`crate::lower::lower_kernel`] compiles
//! these descriptions into the SSA IR from which flow-aware code graphs are
//! built.

use serde::{Deserialize, Serialize};

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum (lowers to compare + select).
    Min,
    /// Maximum (lowers to compare + select).
    Max,
}

/// Comparison operators used in `If` conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

/// Math intrinsics that appear in the benchmark kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MathFn {
    /// Square root.
    Sqrt,
    /// Exponential.
    Exp,
    /// Natural logarithm.
    Log,
    /// Absolute value.
    Fabs,
    /// Power.
    Pow,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
}

/// An affine index expression: `sum(scale_k * var_k) + offset`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct IndexExpr {
    /// `(loop variable name, integer scale)` terms.
    pub terms: Vec<(String, i64)>,
    /// Constant offset.
    pub offset: i64,
}

impl IndexExpr {
    /// Index that is exactly one loop variable, e.g. `A[i]`.
    pub fn var(name: &str) -> Self {
        IndexExpr {
            terms: vec![(name.to_string(), 1)],
            offset: 0,
        }
    }

    /// Constant index, e.g. `A[0]`.
    pub fn constant(c: i64) -> Self {
        IndexExpr {
            terms: vec![],
            offset: c,
        }
    }

    /// `var + offset`, e.g. `A[i+1]`.
    pub fn var_plus(name: &str, offset: i64) -> Self {
        IndexExpr {
            terms: vec![(name.to_string(), 1)],
            offset,
        }
    }

    /// `scale * var + offset`.
    pub fn affine(name: &str, scale: i64, offset: i64) -> Self {
        IndexExpr {
            terms: vec![(name.to_string(), scale)],
            offset,
        }
    }
}

/// A (possibly multi-dimensional) array access such as `A[i][j+1]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayRef {
    /// Array name; must be declared in [`RegionSource::arrays`].
    pub array: String,
    /// One index per dimension.
    pub indices: Vec<IndexExpr>,
}

impl ArrayRef {
    /// 1-D access `array[i]`.
    pub fn d1(array: &str, i: IndexExpr) -> Self {
        ArrayRef {
            array: array.to_string(),
            indices: vec![i],
        }
    }

    /// 2-D access `array[i][j]`.
    pub fn d2(array: &str, i: IndexExpr, j: IndexExpr) -> Self {
        ArrayRef {
            array: array.to_string(),
            indices: vec![i, j],
        }
    }

    /// 3-D access `array[i][j][k]`.
    pub fn d3(array: &str, i: IndexExpr, j: IndexExpr, k: IndexExpr) -> Self {
        ArrayRef {
            array: array.to_string(),
            indices: vec![i, j, k],
        }
    }
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Floating-point literal.
    Const(f64),
    /// Integer literal.
    IntConst(i64),
    /// A scalar variable: either a region parameter (e.g. `alpha`) or a
    /// scalar temporary assigned earlier in the body.
    Scalar(String),
    /// A loop induction variable used as a floating-point value.
    LoopVar(String),
    /// Load from an array element.
    Load(ArrayRef),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
    /// Math intrinsic call.
    Math(MathFn, Vec<Expr>),
    /// Call to a named helper function with float arguments (models the
    /// helper routines in the proxy apps, producing call-flow edges).
    CallHelper(String, Vec<Expr>),
}

// The arithmetic constructors deliberately mirror operator names; they are
// associated functions over two operands, not `self` methods, so the std
// operator traits cannot express them.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// Convenience: `lhs + rhs`.
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `lhs - rhs`.
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `lhs * rhs`.
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: `lhs / rhs`.
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience: load of a 2-D element.
    pub fn load2(array: &str, i: IndexExpr, j: IndexExpr) -> Expr {
        Expr::Load(ArrayRef::d2(array, i, j))
    }

    /// Convenience: load of a 1-D element.
    pub fn load1(array: &str, i: IndexExpr) -> Expr {
        Expr::Load(ArrayRef::d1(array, i))
    }
}

/// Loop upper bound.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LoopBound {
    /// Compile-time constant trip count.
    Const(i64),
    /// A symbolic problem-size parameter, e.g. `"N"` (becomes a function
    /// argument of the outlined region).
    Param(String),
    /// Another loop variable (triangular loops, e.g. `for j in 0..i`).
    Var(String),
    /// Loop variable plus a constant (e.g. `for j in 0..=i` ⇒ `Var + 1`).
    VarPlus(String, i64),
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `target = value`.
    Assign {
        /// Destination array element.
        target: ArrayRef,
        /// Value stored.
        value: Expr,
    },
    /// `target op= value`, e.g. `C[i][j] += ...`.
    Accumulate {
        /// Destination array element.
        target: ArrayRef,
        /// Combining operator.
        op: BinOp,
        /// Value combined in.
        value: Expr,
    },
    /// `name = value` for a scalar temporary.
    ScalarAssign {
        /// Temporary name.
        name: String,
        /// Value assigned.
        value: Expr,
    },
    /// `name op= value` for a scalar temporary (reduction accumulator).
    ScalarAccumulate {
        /// Temporary name.
        name: String,
        /// Combining operator.
        op: BinOp,
        /// Value combined in.
        value: Expr,
    },
    /// Two-sided conditional on a comparison of two expressions.
    If {
        /// Left-hand side of the comparison.
        lhs: Expr,
        /// Comparison operator.
        cmp: CmpOp,
        /// Right-hand side of the comparison.
        rhs: Expr,
        /// Statements executed when the comparison holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise (may be empty).
        else_body: Vec<Stmt>,
    },
    /// A nested sequential loop inside the parallel loop.
    Loop(LoopNest),
    /// Call to a helper function for its side effects.
    CallStmt {
        /// Helper function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

/// A counted loop `for var in 0..bound { body }`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoopNest {
    /// Induction variable name.
    pub var: String,
    /// Upper bound (exclusive).
    pub bound: LoopBound,
    /// Loop body.
    pub body: Vec<Stmt>,
}

impl LoopNest {
    /// Creates a loop over `0..bound`.
    pub fn new(var: &str, bound: LoopBound, body: Vec<Stmt>) -> Self {
        LoopNest {
            var: var.to_string(),
            bound,
            body,
        }
    }

    /// Depth of the loop nest (this loop plus the deepest nested loop).
    pub fn depth(&self) -> usize {
        1 + self
            .body
            .iter()
            .map(|s| match s {
                Stmt::Loop(inner) => inner.depth(),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => then_body
                    .iter()
                    .chain(else_body.iter())
                    .map(|s| match s {
                        Stmt::Loop(inner) => inner.depth(),
                        _ => 0,
                    })
                    .max()
                    .unwrap_or(0),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }
}

/// OpenMP loop scheduling policies (the tuned parameter).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OmpSchedule {
    /// Contiguous blocks assigned up front.
    Static,
    /// Chunks handed out on demand.
    Dynamic,
    /// Exponentially shrinking chunks handed out on demand.
    Guided,
}

/// The OpenMP pragma attached to a region.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct OmpPragma {
    /// Schedule clause written in the source (usually `None`: the runtime
    /// schedule is what the tuner controls).
    pub schedule: Option<OmpSchedule>,
    /// Reduction clause `(operator, scalar)` if present.
    pub reduction: Option<(BinOp, String)>,
    /// `collapse(n)` clause; 1 when absent.
    pub collapse: usize,
    /// `nowait` clause.
    pub nowait: bool,
}

/// Element type of declared arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElemType {
    /// 64-bit float (PolyBench default).
    F64,
    /// 32-bit float.
    F32,
    /// 32-bit integer (index/ID arrays in the proxy apps).
    I32,
}

/// An array declaration: name plus symbolic dimension names.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrayDecl {
    /// Array name.
    pub name: String,
    /// One symbolic size parameter per dimension, e.g. `["N", "M"]`.
    pub dims: Vec<String>,
    /// Element type.
    pub elem: ElemType,
}

impl ArrayDecl {
    /// Declares a 1-D double array.
    pub fn d1(name: &str, dim: &str) -> Self {
        ArrayDecl {
            name: name.to_string(),
            dims: vec![dim.to_string()],
            elem: ElemType::F64,
        }
    }

    /// Declares a 2-D double array.
    pub fn d2(name: &str, d0: &str, d1: &str) -> Self {
        ArrayDecl {
            name: name.to_string(),
            dims: vec![d0.to_string(), d1.to_string()],
            elem: ElemType::F64,
        }
    }

    /// Declares a 3-D double array.
    pub fn d3(name: &str, d0: &str, d1: &str, d2: &str) -> Self {
        ArrayDecl {
            name: name.to_string(),
            dims: vec![d0.to_string(), d1.to_string(), d2.to_string()],
            elem: ElemType::F64,
        }
    }

    /// Changes the element type (builder style).
    pub fn with_elem(mut self, elem: ElemType) -> Self {
        self.elem = elem;
        self
    }
}

/// A helper routine called from the region body (produces call-flow edges,
/// like the physics helper functions in LULESH or Quicksilver).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HelperFn {
    /// Function name.
    pub name: String,
    /// Number of double parameters.
    pub num_params: usize,
    /// Number of arithmetic operations in its synthesized body (controls the
    /// size of the callee in the code graph).
    pub body_ops: usize,
}

/// The source description of one OpenMP parallel region.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegionSource {
    /// Region name, unique within the application (e.g. `"gemm_r0"`).
    pub name: String,
    /// The OpenMP pragma on the region.
    pub pragma: OmpPragma,
    /// Arrays referenced by the region.
    pub arrays: Vec<ArrayDecl>,
    /// Scalar parameters (e.g. `alpha`, `beta`).
    pub scalars: Vec<String>,
    /// Symbolic problem-size parameters (e.g. `N`, `M`).
    pub size_params: Vec<String>,
    /// Helper routines callable from the body.
    pub helpers: Vec<HelperFn>,
    /// The outermost (work-shared) loop of the region.
    pub parallel_loop: LoopNest,
}

impl RegionSource {
    /// Returns the loop-nest depth of the region.
    pub fn depth(&self) -> usize {
        self.parallel_loop.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm_like() -> RegionSource {
        // C[i][j] = beta*C[i][j] + alpha * sum_k A[i][k]*B[k][j]
        let inner_k = LoopNest::new(
            "k",
            LoopBound::Param("NK".into()),
            vec![Stmt::Accumulate {
                target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                op: BinOp::Add,
                value: Expr::mul(
                    Expr::mul(
                        Expr::Scalar("alpha".into()),
                        Expr::load2("A", IndexExpr::var("i"), IndexExpr::var("k")),
                    ),
                    Expr::load2("B", IndexExpr::var("k"), IndexExpr::var("j")),
                ),
            }],
        );
        let loop_j = LoopNest::new(
            "j",
            LoopBound::Param("NJ".into()),
            vec![
                Stmt::Assign {
                    target: ArrayRef::d2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                    value: Expr::mul(
                        Expr::Scalar("beta".into()),
                        Expr::load2("C", IndexExpr::var("i"), IndexExpr::var("j")),
                    ),
                },
                Stmt::Loop(inner_k),
            ],
        );
        let loop_i = LoopNest::new("i", LoopBound::Param("NI".into()), vec![Stmt::Loop(loop_j)]);
        RegionSource {
            name: "gemm_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![
                ArrayDecl::d2("A", "NI", "NK"),
                ArrayDecl::d2("B", "NK", "NJ"),
                ArrayDecl::d2("C", "NI", "NJ"),
            ],
            scalars: vec!["alpha".into(), "beta".into()],
            size_params: vec!["NI".into(), "NJ".into(), "NK".into()],
            helpers: vec![],
            parallel_loop: loop_i,
        }
    }

    #[test]
    fn gemm_depth_is_three() {
        assert_eq!(gemm_like().depth(), 3);
    }

    #[test]
    fn index_expr_constructors() {
        let i = IndexExpr::var("i");
        assert_eq!(i.terms, vec![("i".to_string(), 1)]);
        let ip1 = IndexExpr::var_plus("i", 1);
        assert_eq!(ip1.offset, 1);
        let c = IndexExpr::constant(4);
        assert!(c.terms.is_empty());
        let a = IndexExpr::affine("i", 2, -1);
        assert_eq!(a.terms[0].1, 2);
        assert_eq!(a.offset, -1);
    }

    #[test]
    fn depth_counts_loops_inside_if() {
        let inner = LoopNest::new("j", LoopBound::Const(4), vec![]);
        let l = LoopNest::new(
            "i",
            LoopBound::Const(8),
            vec![Stmt::If {
                lhs: Expr::LoopVar("i".into()),
                cmp: CmpOp::Lt,
                rhs: Expr::IntConst(4),
                then_body: vec![Stmt::Loop(inner)],
                else_body: vec![],
            }],
        );
        assert_eq!(l.depth(), 2);
    }

    #[test]
    fn expr_builders_nest() {
        let e = Expr::add(
            Expr::mul(Expr::Const(2.0), Expr::Scalar("x".into())),
            Expr::Const(1.0),
        );
        match e {
            Expr::Binary(BinOp::Add, lhs, _) => match *lhs {
                Expr::Binary(BinOp::Mul, _, _) => {}
                _ => panic!("expected mul on lhs"),
            },
            _ => panic!("expected add at top"),
        }
    }

    #[test]
    fn array_decl_builders() {
        let a = ArrayDecl::d3("grid", "NX", "NY", "NZ").with_elem(ElemType::F32);
        assert_eq!(a.dims.len(), 3);
        assert_eq!(a.elem, ElemType::F32);
    }
}
