//! Region extraction — the `llvm-extract` analogue.
//!
//! Given a lowered module and a region name, produces a new module containing
//! only the outlined region function and the helper functions it (transitively)
//! calls. This trimmed module is what `pnp-graph` turns into a flow graph, so
//! that graph size reflects the parallel region rather than the whole
//! application — exactly how the paper extracts `.omp_outlined.` functions.

use crate::lower::outlined_name;
use crate::module::Module;
use std::collections::VecDeque;

/// Extracts the outlined function for `region_name` plus its transitive
/// callees into a fresh module.
///
/// Returns `None` when the region does not exist in the module.
pub fn extract_region(module: &Module, region_name: &str) -> Option<Module> {
    let fn_name = outlined_name(region_name);
    module.function(&fn_name)?;

    let mut out = Module::new(format!("{}:{}", module.name, region_name));
    let mut queue = VecDeque::new();
    queue.push_back(fn_name);
    let mut added: Vec<String> = Vec::new();

    while let Some(name) = queue.pop_front() {
        if added.contains(&name) {
            continue;
        }
        if let Some(f) = module.function(&name) {
            for callee in f.callees() {
                if !added.contains(&callee) {
                    queue.push_back(callee);
                }
            }
            out.add_function(f.clone());
            added.push(name);
        }
        // Unknown callees (runtime symbols like __kmpc_*) are simply skipped:
        // they become leaf call edges in the graph.
    }

    Some(out)
}

/// Extracts every outlined region of a module, returning `(region function
/// name, extracted module)` pairs in definition order.
pub fn extract_all_regions(module: &Module) -> Vec<(String, Module)> {
    module
        .outlined_regions()
        .iter()
        .filter_map(|f| {
            let region_name = f.name.strip_prefix(".omp_outlined.")?.to_string();
            extract_region(module, &region_name).map(|m| (f.name.clone(), m))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{
        ArrayDecl, ArrayRef, Expr, HelperFn, IndexExpr, LoopBound, LoopNest, OmpPragma,
        RegionSource, Stmt,
    };
    use crate::lower::lower_kernel;

    fn app_with_two_regions() -> Module {
        let r0 = RegionSource {
            name: "r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![HelperFn {
                name: "helper_math".into(),
                num_params: 2,
                body_ops: 4,
            }],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("A", IndexExpr::var("i")),
                    value: Expr::CallHelper(
                        "helper_math".into(),
                        vec![Expr::load1("A", IndexExpr::var("i")), Expr::Const(2.0)],
                    ),
                }],
            ),
        };
        let r1 = RegionSource {
            name: "r1".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("B", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("B", IndexExpr::var("i")),
                    value: Expr::Const(0.0),
                }],
            ),
        };
        lower_kernel("app", &[r0, r1])
    }

    #[test]
    fn extract_keeps_region_and_helpers_only() {
        let m = app_with_two_regions();
        let extracted = extract_region(&m, "r0").expect("region exists");
        let names: Vec<&str> = extracted
            .functions
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        assert!(names.contains(&".omp_outlined.r0"));
        assert!(names.contains(&"helper_math"));
        assert!(!names.iter().any(|n| n.contains("r1")));
        assert!(!names.iter().any(|n| n.contains("host")));
    }

    #[test]
    fn extract_region_without_helpers_is_single_function() {
        let m = app_with_two_regions();
        let extracted = extract_region(&m, "r1").unwrap();
        assert_eq!(extracted.functions.len(), 1);
    }

    #[test]
    fn extract_missing_region_returns_none() {
        let m = app_with_two_regions();
        assert!(extract_region(&m, "does_not_exist").is_none());
    }

    #[test]
    fn extract_all_regions_finds_both() {
        let m = app_with_two_regions();
        let all = extract_all_regions(&m);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, ".omp_outlined.r0");
        assert_eq!(all[1].0, ".omp_outlined.r1");
    }
}
