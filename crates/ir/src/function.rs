//! Functions.

use crate::block::BasicBlock;
use crate::inst::Instruction;
use crate::types::Type;
use crate::value::{BlockId, InstId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A function: named, typed parameters plus a list of basic blocks.
///
/// Outlined OpenMP regions are ordinary functions whose `is_outlined_region`
/// flag is set; the graph extraction step looks for that flag, mirroring how
/// the paper extracts `.omp_outlined.` functions with `llvm-extract`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Symbol name, e.g. `".omp_outlined.gemm_region0"`.
    pub name: String,
    /// Parameter names and types (arrays arrive as pointers).
    pub params: Vec<(String, Type)>,
    /// Return type.
    pub ret_ty: Type,
    /// Basic blocks; block 0 is the entry block.
    pub blocks: Vec<BasicBlock>,
    /// True when this function is an outlined `#pragma omp parallel` region.
    pub is_outlined_region: bool,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Self {
        Function {
            name: name.into(),
            params,
            ret_ty,
            blocks: Vec::new(),
            is_outlined_region: false,
        }
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.len()).sum()
    }

    /// Looks up a block by id.
    pub fn block(&self, id: BlockId) -> Option<&BasicBlock> {
        self.blocks.iter().find(|b| b.id == id)
    }

    /// Iterates over all instructions in block order.
    pub fn insts(&self) -> impl Iterator<Item = &Instruction> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }

    /// Builds a map from instruction id to the instruction, for operand
    /// resolution.
    pub fn inst_map(&self) -> HashMap<InstId, &Instruction> {
        self.insts().map(|i| (i.id, i)).collect()
    }

    /// Names of functions called from this function (deduplicated, in first-
    /// call order). These become call-flow edges in the code graph.
    pub fn callees(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for inst in self.insts() {
            if inst.opcode == crate::inst::Opcode::Call {
                for op in &inst.operands {
                    if let crate::value::Operand::Func(name) = op {
                        if !seen.contains(name) {
                            seen.push(name.clone());
                        }
                    }
                }
            }
        }
        seen
    }

    /// Static instruction-mix statistics, useful as auxiliary features and in
    /// tests.
    pub fn opcode_histogram(&self) -> HashMap<crate::inst::Opcode, usize> {
        let mut h = HashMap::new();
        for inst in self.insts() {
            *h.entry(inst.opcode).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::value::Operand;

    fn tiny_function() -> Function {
        let mut f = Function::new("f", vec![("a".into(), Type::F64.ptr())], Type::Void);
        let mut b = BasicBlock::new(0, "entry");
        b.insts.push(Instruction::new(
            0,
            Opcode::Load,
            Type::F64,
            vec![Operand::Arg(0)],
        ));
        b.insts.push(Instruction::new(
            1,
            Opcode::Call,
            Type::Void,
            vec![Operand::Func("helper".into())],
        ));
        b.insts
            .push(Instruction::new(2, Opcode::Ret, Type::Void, vec![]));
        f.blocks.push(b);
        f
    }

    #[test]
    fn inst_count_and_lookup() {
        let f = tiny_function();
        assert_eq!(f.num_insts(), 3);
        assert!(f.block(0).is_some());
        assert!(f.block(1).is_none());
        assert!(f.inst_map().contains_key(&1));
    }

    #[test]
    fn callees_found() {
        let f = tiny_function();
        assert_eq!(f.callees(), vec!["helper".to_string()]);
    }

    #[test]
    fn opcode_histogram_counts() {
        let f = tiny_function();
        let h = f.opcode_histogram();
        assert_eq!(h[&Opcode::Load], 1);
        assert_eq!(h[&Opcode::Ret], 1);
    }
}
