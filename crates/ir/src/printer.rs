//! Textual printer producing LLVM-flavoured assembly, mainly for debugging
//! and for golden tests.

use crate::function::Function;
use crate::module::Module;
use crate::value::Operand;
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "; ModuleID = '{}'", module.name);
    for f in &module.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

/// Prints one function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(name, ty)| format!("{ty} %{name}"))
        .collect();
    let marker = if f.is_outlined_region {
        " ; omp outlined region"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "define {} @{}({}) {{{}",
        f.ret_ty,
        f.name,
        params.join(", "),
        marker
    );
    for block in &f.blocks {
        let _ = writeln!(out, "{}:                ; bb{}", block.label, block.id);
        for inst in &block.insts {
            let ops: Vec<String> = inst.operands.iter().map(print_operand).collect();
            if inst.defines_value() {
                let _ = writeln!(
                    out,
                    "  %{} = {} {} {}",
                    inst.id,
                    inst.opcode,
                    inst.ty,
                    ops.join(", ")
                );
            } else {
                let _ = writeln!(out, "  {} {}", inst.opcode, ops.join(", "));
            }
        }
    }
    out.push_str("}\n");
    out
}

fn print_operand(op: &Operand) -> String {
    match op {
        Operand::Inst(id) => format!("%{id}"),
        Operand::Arg(idx) => format!("%arg{idx}"),
        Operand::Const(c) => format!("{c}"),
        Operand::Block(id) => format!("label %bb{id}"),
        Operand::Global(name) => format!("@{name}"),
        Operand::Func(name) => format!("@{name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{
        ArrayDecl, ArrayRef, Expr, IndexExpr, LoopBound, LoopNest, OmpPragma, RegionSource, Stmt,
    };
    use crate::lower::lower_kernel;

    fn simple_module() -> Module {
        let region = RegionSource {
            name: "copy_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N"), ArrayDecl::d1("B", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("B", IndexExpr::var("i")),
                    value: Expr::load1("A", IndexExpr::var("i")),
                }],
            ),
        };
        lower_kernel("copy", &[region])
    }

    #[test]
    fn printed_module_contains_expected_markers() {
        let text = print_module(&simple_module());
        assert!(text.contains("; ModuleID = 'copy'"));
        assert!(text.contains("@.omp_outlined.copy_r0"));
        assert!(text.contains("omp outlined region"));
        assert!(text.contains("phi"));
        assert!(text.contains("getelementptr"));
        assert!(text.contains("store"));
        assert!(text.contains("br.cond"));
    }

    #[test]
    fn printed_function_has_one_line_per_instruction_plus_headers() {
        let m = simple_module();
        let f = m.outlined_regions()[0];
        let text = print_function(f);
        let inst_lines = text.lines().filter(|l| l.starts_with("  ")).count();
        assert_eq!(inst_lines, f.num_insts());
    }

    #[test]
    fn operands_print_distinctly() {
        assert_eq!(print_operand(&Operand::Inst(3)), "%3");
        assert_eq!(print_operand(&Operand::Arg(1)), "%arg1");
        assert_eq!(print_operand(&Operand::Block(2)), "label %bb2");
        assert_eq!(print_operand(&Operand::Func("f".into())), "@f");
        assert_eq!(print_operand(&Operand::Global("g".into())), "@g");
    }
}
