//! Instructions and opcodes.

use crate::types::Type;
use crate::value::{InstId, Operand};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Instruction opcodes — a subset of LLVM sufficient for lowered loop-nest
/// kernels. The opcode spelling doubles as the node text embedded by the
/// code-graph vocabulary, so it intentionally mirrors LLVM's.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // Integer arithmetic
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    // Floating-point arithmetic
    FAdd,
    FSub,
    FMul,
    FDiv,
    FNeg,
    // Memory
    Alloca,
    Load,
    Store,
    GetElementPtr,
    // Comparisons
    ICmp,
    FCmp,
    // Casts
    SExt,
    SIToFP,
    FPToSI,
    Trunc,
    // Control flow
    Br,
    CondBr,
    Phi,
    Ret,
    Call,
    Select,
    // Math intrinsics modelled as dedicated opcodes so they stand out in the
    // vocabulary (sqrt/exp/log show up in gramschmidt, correlation, RSBench…)
    Sqrt,
    Exp,
    Log,
    Fabs,
    Pow,
    Sin,
    Cos,
}

impl Opcode {
    /// True for instructions that terminate a basic block.
    pub fn is_terminator(self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::Ret)
    }

    /// True for instructions that touch memory.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Opcode::Load | Opcode::Store | Opcode::Alloca | Opcode::GetElementPtr
        )
    }

    /// True for floating-point compute instructions.
    pub fn is_flop(self) -> bool {
        matches!(
            self,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FNeg
                | Opcode::Sqrt
                | Opcode::Exp
                | Opcode::Log
                | Opcode::Fabs
                | Opcode::Pow
                | Opcode::Sin
                | Opcode::Cos
        )
    }

    /// LLVM-like mnemonic used for printing and for the graph vocabulary.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::SRem => "srem",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
            Opcode::FNeg => "fneg",
            Opcode::Alloca => "alloca",
            Opcode::Load => "load",
            Opcode::Store => "store",
            Opcode::GetElementPtr => "getelementptr",
            Opcode::ICmp => "icmp",
            Opcode::FCmp => "fcmp",
            Opcode::SExt => "sext",
            Opcode::SIToFP => "sitofp",
            Opcode::FPToSI => "fptosi",
            Opcode::Trunc => "trunc",
            Opcode::Br => "br",
            Opcode::CondBr => "br.cond",
            Opcode::Phi => "phi",
            Opcode::Ret => "ret",
            Opcode::Call => "call",
            Opcode::Select => "select",
            Opcode::Sqrt => "call.sqrt",
            Opcode::Exp => "call.exp",
            Opcode::Log => "call.log",
            Opcode::Fabs => "call.fabs",
            Opcode::Pow => "call.pow",
            Opcode::Sin => "call.sin",
            Opcode::Cos => "call.cos",
        }
    }

    /// All opcodes, in a stable order (used to build the graph vocabulary).
    pub fn all() -> &'static [Opcode] {
        use Opcode::*;
        &[
            Add,
            Sub,
            Mul,
            SDiv,
            SRem,
            FAdd,
            FSub,
            FMul,
            FDiv,
            FNeg,
            Alloca,
            Load,
            Store,
            GetElementPtr,
            ICmp,
            FCmp,
            SExt,
            SIToFP,
            FPToSI,
            Trunc,
            Br,
            CondBr,
            Phi,
            Ret,
            Call,
            Select,
            Sqrt,
            Exp,
            Log,
            Fabs,
            Pow,
            Sin,
            Cos,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A single IR instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Function-unique id; also names the SSA value this instruction defines.
    pub id: InstId,
    /// Operation performed.
    pub opcode: Opcode,
    /// Result type (`Void` for stores/branches).
    pub ty: Type,
    /// Operands in positional order.
    pub operands: Vec<Operand>,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(id: InstId, opcode: Opcode, ty: Type, operands: Vec<Operand>) -> Self {
        Instruction {
            id,
            opcode,
            ty,
            operands,
        }
    }

    /// True when the instruction defines an SSA value usable by others.
    pub fn defines_value(&self) -> bool {
        self.ty != Type::Void
    }

    /// Ids of the SSA values this instruction uses.
    pub fn used_values(&self) -> Vec<InstId> {
        self.operands.iter().filter_map(|o| o.as_inst()).collect()
    }

    /// Ids of the blocks this instruction targets (for terminators / phis).
    pub fn used_blocks(&self) -> Vec<u32> {
        self.operands.iter().filter_map(|o| o.as_block()).collect()
    }

    /// Text embedded as the node label in the code graph: mnemonic plus
    /// result type, e.g. `"fadd double"` — the same granularity PROGRAML uses.
    pub fn node_text(&self) -> String {
        if self.ty == Type::Void {
            self.opcode.mnemonic().to_string()
        } else {
            format!("{} {}", self.opcode.mnemonic(), self.ty)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::CondBr.is_terminator());
        assert!(Opcode::Ret.is_terminator());
        assert!(!Opcode::Add.is_terminator());
    }

    #[test]
    fn memory_and_flop_classification() {
        assert!(Opcode::Load.is_memory());
        assert!(Opcode::GetElementPtr.is_memory());
        assert!(!Opcode::FAdd.is_memory());
        assert!(Opcode::FMul.is_flop());
        assert!(Opcode::Sqrt.is_flop());
        assert!(!Opcode::Add.is_flop());
    }

    #[test]
    fn node_text_includes_type_for_values() {
        let i = Instruction::new(0, Opcode::FAdd, Type::F64, vec![]);
        assert_eq!(i.node_text(), "fadd double");
        let s = Instruction::new(1, Opcode::Store, Type::Void, vec![]);
        assert_eq!(s.node_text(), "store");
    }

    #[test]
    fn used_values_filters_operands() {
        let i = Instruction::new(
            5,
            Opcode::Add,
            Type::I32,
            vec![Operand::Inst(1), Operand::const_i32(4), Operand::Inst(3)],
        );
        assert_eq!(i.used_values(), vec![1, 3]);
        assert!(i.defines_value());
    }

    #[test]
    fn all_opcodes_have_unique_mnemonics() {
        let all = Opcode::all();
        let mut names: Vec<&str> = all.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
    }
}
