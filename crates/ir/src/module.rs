//! Modules: the top-level IR container.

use crate::function::Function;
use serde::{Deserialize, Serialize};

/// A translation unit: a set of functions (the "host" function plus one
/// outlined function per OpenMP region, plus any helper callees).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name — by convention the benchmark application name.
    pub name: String,
    /// All functions. Outlined regions carry `is_outlined_region = true`.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
        }
    }

    /// Adds a function and returns a reference to it.
    pub fn add_function(&mut self, f: Function) -> &Function {
        self.functions.push(f);
        // pnp-lint: allow(unwrap) — the element was pushed on the line above
        self.functions.last().unwrap()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// All outlined OpenMP region functions, in definition order.
    pub fn outlined_regions(&self) -> Vec<&Function> {
        self.functions
            .iter()
            .filter(|f| f.is_outlined_region)
            .collect()
    }

    /// Total instruction count over all functions.
    pub fn num_insts(&self) -> usize {
        self.functions.iter().map(|f| f.num_insts()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn add_and_find_functions() {
        let mut m = Module::new("gemm");
        m.add_function(Function::new("main", vec![], Type::Void));
        let mut outlined = Function::new(".omp_outlined.gemm_r0", vec![], Type::Void);
        outlined.is_outlined_region = true;
        m.add_function(outlined);

        assert!(m.function("main").is_some());
        assert!(m.function("missing").is_none());
        assert_eq!(m.outlined_regions().len(), 1);
        assert_eq!(m.outlined_regions()[0].name, ".omp_outlined.gemm_r0");
    }

    #[test]
    fn empty_module() {
        let m = Module::new("empty");
        assert_eq!(m.num_insts(), 0);
        assert!(m.outlined_regions().is_empty());
    }
}
