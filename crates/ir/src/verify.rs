//! IR structural verifier.
//!
//! Catches lowering bugs early: every block must end in exactly one
//! terminator, every operand must reference an existing instruction, block or
//! argument, and call targets must exist (or be well-known runtime symbols).

use crate::function::Function;
use crate::module::Module;
use crate::value::Operand;
use std::collections::HashSet;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found.
    pub function: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.function, self.message)
    }
}

/// Verifies every function in the module. Returns all problems found.
pub fn verify_module(module: &Module) -> Result<(), Vec<VerifyError>> {
    let known_functions: HashSet<&str> = module.functions.iter().map(|f| f.name.as_str()).collect();
    let mut errors = Vec::new();
    for f in &module.functions {
        verify_function(f, &known_functions, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn verify_function(f: &Function, known_functions: &HashSet<&str>, errors: &mut Vec<VerifyError>) {
    let err = |msg: String, errors: &mut Vec<VerifyError>| {
        errors.push(VerifyError {
            function: f.name.clone(),
            message: msg,
        });
    };

    if f.blocks.is_empty() {
        err("function has no blocks".into(), errors);
        return;
    }

    let block_ids: HashSet<u32> = f.blocks.iter().map(|b| b.id).collect();
    let inst_ids: HashSet<u32> = f.insts().map(|i| i.id).collect();

    // Instruction ids must be unique.
    if inst_ids.len() != f.num_insts() {
        err("duplicate instruction ids".into(), errors);
    }

    for block in &f.blocks {
        if !block.is_terminated() {
            err(format!("block '{}' is not terminated", block.label), errors);
        }
        for (pos, inst) in block.insts.iter().enumerate() {
            if inst.opcode.is_terminator() && pos + 1 != block.insts.len() {
                err(
                    format!(
                        "terminator {} in the middle of block '{}'",
                        inst.opcode, block.label
                    ),
                    errors,
                );
            }
            for op in &inst.operands {
                match op {
                    Operand::Inst(id) => {
                        if !inst_ids.contains(id) {
                            err(
                                format!("instruction {} references unknown value %{}", inst.id, id),
                                errors,
                            );
                        }
                    }
                    Operand::Block(id) => {
                        if !block_ids.contains(id) {
                            err(
                                format!("instruction {} targets unknown block bb{}", inst.id, id),
                                errors,
                            );
                        }
                    }
                    Operand::Arg(idx) => {
                        if *idx >= f.params.len() {
                            err(
                                format!(
                                    "instruction {} references argument #{} but function has {}",
                                    inst.id,
                                    idx,
                                    f.params.len()
                                ),
                                errors,
                            );
                        }
                    }
                    Operand::Func(name) => {
                        if !known_functions.contains(name.as_str())
                            && !name.starts_with("__kmpc")
                            && !name.starts_with("llvm.")
                        {
                            err(format!("call to unknown function '{name}'"), errors);
                        }
                    }
                    Operand::Const(_) | Operand::Global(_) => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BasicBlock;
    use crate::inst::{Instruction, Opcode};
    use crate::types::Type;

    fn ok_module() -> Module {
        let mut m = Module::new("m");
        let mut f = Function::new("f", vec![("n".into(), Type::I32)], Type::Void);
        let mut b = BasicBlock::new(0, "entry");
        b.insts.push(Instruction::new(
            0,
            Opcode::Add,
            Type::I32,
            vec![Operand::Arg(0), Operand::const_i32(1)],
        ));
        b.insts
            .push(Instruction::new(1, Opcode::Ret, Type::Void, vec![]));
        f.blocks.push(b);
        m.add_function(f);
        m
    }

    #[test]
    fn valid_module_passes() {
        assert!(verify_module(&ok_module()).is_ok());
    }

    #[test]
    fn unterminated_block_is_reported() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts.pop(); // drop the ret
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not terminated")));
    }

    #[test]
    fn unknown_value_reference_is_reported() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts[0].operands[0] = Operand::Inst(99);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown value")));
    }

    #[test]
    fn unknown_call_target_is_reported() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts[0] = Instruction::new(
            0,
            Opcode::Call,
            Type::Void,
            vec![Operand::Func("missing_fn".into())],
        );
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
    }

    #[test]
    fn kmpc_runtime_calls_are_allowed() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts[0] = Instruction::new(
            0,
            Opcode::Call,
            Type::Void,
            vec![Operand::Func("__kmpc_fork_call".into())],
        );
        assert!(verify_module(&m).is_ok());
    }

    #[test]
    fn out_of_range_argument_is_reported() {
        let mut m = ok_module();
        m.functions[0].blocks[0].insts[0].operands[0] = Operand::Arg(5);
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("argument")));
    }

    #[test]
    fn error_display_includes_function() {
        let e = VerifyError {
            function: "f".into(),
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "[f] boom");
    }
}
