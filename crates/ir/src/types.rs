//! IR value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The small set of first-class types used by lowered kernels.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 1-bit boolean (comparison results).
    I1,
    /// 32-bit signed integer (loop counters, indices).
    I32,
    /// 64-bit signed integer (flattened array offsets).
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float (the default element type of PolyBench arrays).
    F64,
    /// Pointer to an element type.
    Ptr(Box<Type>),
    /// No value (used by stores, branches, and void calls).
    Void,
}

impl Type {
    /// Pointer to this type.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// True for `F32`/`F64`.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// True for the integer types (including `I1`).
    pub fn is_int(&self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64)
    }

    /// True for pointers.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr(_))
    }

    /// The pointee type of a pointer (panics otherwise).
    pub fn pointee(&self) -> &Type {
        match self {
            Type::Ptr(inner) => inner,
            other => panic!("pointee() called on non-pointer type {other}"),
        }
    }

    /// Size of one element in bytes (pointers count as 8).
    pub fn size_bytes(&self) -> usize {
        match self {
            Type::I1 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr(_) => 8,
            Type::Void => 0,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I1 => write!(f, "i1"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "float"),
            Type::F64 => write!(f, "double"),
            Type::Ptr(inner) => write!(f, "{inner}*"),
            Type::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_llvm_spelling() {
        assert_eq!(Type::F64.to_string(), "double");
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.ptr().to_string(), "double*");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn classification() {
        assert!(Type::F32.is_float());
        assert!(!Type::I64.is_float());
        assert!(Type::I1.is_int());
        assert!(Type::F64.ptr().is_ptr());
    }

    #[test]
    fn pointee_unwraps() {
        let p = Type::F64.ptr();
        assert_eq!(*p.pointee(), Type::F64);
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::F32.size_bytes(), 4);
        assert_eq!(Type::I32.ptr().size_bytes(), 8);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    #[should_panic]
    fn pointee_of_scalar_panics() {
        Type::I32.pointee();
    }
}
