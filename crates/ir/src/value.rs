//! Operands and constants.

use crate::types::Type;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an instruction within a function (also identifies the SSA
/// value the instruction produces).
pub type InstId = u32;

/// Identifier of a basic block within a function.
pub type BlockId = u32;

/// A literal constant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Constant {
    /// The constant's type.
    pub ty: Type,
    /// Textual spelling, e.g. `"0"`, `"1.5"`. Text is what the code graph
    /// embeds, mirroring PROGRAML's constant nodes.
    pub text: String,
}

impl Constant {
    /// Integer constant of type `i32`.
    pub fn i32(v: i64) -> Self {
        Constant {
            ty: Type::I32,
            text: v.to_string(),
        }
    }

    /// Integer constant of type `i64`.
    pub fn i64(v: i64) -> Self {
        Constant {
            ty: Type::I64,
            text: v.to_string(),
        }
    }

    /// Floating-point constant of type `double`.
    pub fn f64(v: f64) -> Self {
        Constant {
            ty: Type::F64,
            text: format!("{v:.6e}"),
        }
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.ty, self.text)
    }
}

/// An instruction operand.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// The SSA value produced by another instruction in the same function.
    Inst(InstId),
    /// A function argument (by index).
    Arg(usize),
    /// An inline constant.
    Const(Constant),
    /// A basic-block label (branch targets, phi incoming blocks).
    Block(BlockId),
    /// A global symbol (arrays shared into the outlined region).
    Global(String),
    /// A callee function name.
    Func(String),
}

impl Operand {
    /// Convenience constructor for integer constants.
    pub fn const_i32(v: i64) -> Self {
        Operand::Const(Constant::i32(v))
    }

    /// Convenience constructor for 64-bit integer constants.
    pub fn const_i64(v: i64) -> Self {
        Operand::Const(Constant::i64(v))
    }

    /// Convenience constructor for double constants.
    pub fn const_f64(v: f64) -> Self {
        Operand::Const(Constant::f64(v))
    }

    /// Returns the instruction id if this operand is an SSA value.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Operand::Inst(id) => Some(*id),
            _ => None,
        }
    }

    /// Returns the block id if this operand is a label.
    pub fn as_block(&self) -> Option<BlockId> {
        match self {
            Operand::Block(id) => Some(*id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_constructors() {
        assert_eq!(Constant::i32(5).text, "5");
        assert_eq!(Constant::i32(5).ty, Type::I32);
        assert_eq!(Constant::i64(-3).ty, Type::I64);
        assert!(Constant::f64(1.5).text.contains('e'));
    }

    #[test]
    fn operand_accessors() {
        assert_eq!(Operand::Inst(7).as_inst(), Some(7));
        assert_eq!(Operand::Block(2).as_block(), Some(2));
        assert_eq!(Operand::const_i32(1).as_inst(), None);
        assert_eq!(Operand::Func("f".into()).as_block(), None);
    }

    #[test]
    fn constant_display() {
        assert_eq!(Constant::i32(7).to_string(), "i32 7");
    }
}
