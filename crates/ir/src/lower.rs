//! Lowering from the kernel DSL to the SSA IR.
//!
//! Each [`RegionSource`] becomes an *outlined* function named
//! `.omp_outlined.<region>` — the same shape Clang produces for
//! `#pragma omp parallel` regions — plus synthesized helper callees and a
//! host function that calls every region (the analogue of
//! `__kmpc_fork_call` sites).

use crate::builder::FunctionBuilder;
use crate::dsl::{
    ArrayRef, BinOp, ElemType, Expr, HelperFn, IndexExpr, LoopBound, LoopNest, MathFn,
    RegionSource, Stmt,
};
use crate::function::Function;
use crate::inst::Opcode;
use crate::module::Module;
use crate::types::Type;
use crate::value::{InstId, Operand};
use std::collections::HashMap;

/// Per-region lowering context.
struct Ctx {
    /// Loop variable name → SSA value (i32 phi) of the current iteration.
    loop_vars: HashMap<String, InstId>,
    /// Scalar temporary name → alloca instruction id.
    scalar_slots: HashMap<String, InstId>,
    /// Array name → (argument index of the base pointer, element type, dims).
    arrays: HashMap<String, (usize, Type, Vec<String>)>,
    /// Scalar parameter name → argument index.
    scalar_params: HashMap<String, usize>,
    /// Size parameter name → argument index.
    size_params: HashMap<String, usize>,
}

fn elem_type(e: ElemType) -> Type {
    match e {
        ElemType::F64 => Type::F64,
        ElemType::F32 => Type::F32,
        ElemType::I32 => Type::I32,
    }
}

/// Lowers a whole application: every region plus helpers plus a host driver.
pub fn lower_kernel(app_name: &str, regions: &[RegionSource]) -> Module {
    let mut module = Module::new(app_name);
    let mut synthesized_helpers: Vec<String> = Vec::new();

    for region in regions {
        // Synthesize helper callees first so call targets exist.
        for helper in &region.helpers {
            if !synthesized_helpers.contains(&helper.name) {
                module.add_function(synthesize_helper(helper));
                synthesized_helpers.push(helper.name.clone());
            }
        }
        module.add_function(lower_region(region));
    }

    // Host function that "forks" every region, mirroring __kmpc_fork_call.
    let mut host = FunctionBuilder::new(format!("{app_name}.host"), vec![], Type::Void);
    for region in regions {
        host.push(
            Opcode::Call,
            Type::Void,
            vec![Operand::Func(outlined_name(&region.name))],
        );
    }
    host.ret_void();
    module.add_function(host.finish());

    module
}

/// The symbol name of the outlined function for a region.
pub fn outlined_name(region_name: &str) -> String {
    format!(".omp_outlined.{region_name}")
}

/// A static-validity defect in a [`RegionSource`]: every way `lower_kernel`
/// can panic on malformed input, as a checkable diagnostic instead. Produced
/// by [`check_region`] / [`try_lower_kernel`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// Two regions in one application share a name (their outlined functions
    /// would collide).
    DuplicateRegionName {
        /// The repeated region name.
        name: String,
    },
    /// A loop bound references a size parameter that was never declared.
    UnknownSizeParam {
        /// Region containing the defect.
        region: String,
        /// The undeclared parameter.
        param: String,
    },
    /// A loop bound or expression references a loop variable not in scope.
    UnknownLoopVar {
        /// Region containing the defect.
        region: String,
        /// The out-of-scope variable.
        var: String,
    },
    /// An array access names an array that was never declared.
    UnknownArray {
        /// Region containing the defect.
        region: String,
        /// The undeclared array.
        array: String,
    },
    /// An array access has the wrong number of indices for its declaration.
    IndexArityMismatch {
        /// Region containing the defect.
        region: String,
        /// The array accessed.
        array: String,
        /// Indices written at the access site.
        got: usize,
        /// Dimensions in the declaration.
        want: usize,
    },
    /// A non-leading array dimension is not a declared size parameter, so
    /// row-major flattening has no extent to multiply by.
    UnknownDimParam {
        /// Region containing the defect.
        region: String,
        /// The array whose declaration is defective.
        array: String,
        /// The unknown dimension name.
        param: String,
    },
    /// An index expression references a name that is neither a loop variable
    /// in scope nor a size parameter.
    UnknownIndexVar {
        /// Region containing the defect.
        region: String,
        /// The unknown name.
        var: String,
    },
    /// A call names a helper that was never declared (the module would fail
    /// IR verification with an unknown call target).
    UnknownHelper {
        /// Region containing the defect.
        region: String,
        /// The undeclared helper.
        helper: String,
    },
    /// A call passes the wrong number of arguments to a declared helper.
    HelperArityMismatch {
        /// Region containing the defect.
        region: String,
        /// The helper called.
        helper: String,
        /// Arguments at the call site.
        got: usize,
        /// Parameters in the declaration.
        want: usize,
    },
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::DuplicateRegionName { name } => {
                write!(f, "duplicate region name {name}")
            }
            LowerError::UnknownSizeParam { region, param } => {
                write!(f, "[{region}] unknown size parameter {param}")
            }
            LowerError::UnknownLoopVar { region, var } => {
                write!(f, "[{region}] unknown loop variable {var}")
            }
            LowerError::UnknownArray { region, array } => {
                write!(f, "[{region}] unknown array {array}")
            }
            LowerError::IndexArityMismatch {
                region,
                array,
                got,
                want,
            } => write!(
                f,
                "[{region}] array {array} accessed with {got} indices but declared with {want} dims"
            ),
            LowerError::UnknownDimParam {
                region,
                array,
                param,
            } => write!(
                f,
                "[{region}] array {array} declares non-leading dimension {param} which is not a size parameter"
            ),
            LowerError::UnknownIndexVar { region, var } => {
                write!(f, "[{region}] index expression references unknown variable {var}")
            }
            LowerError::UnknownHelper { region, helper } => {
                write!(f, "[{region}] call to undeclared helper {helper}")
            }
            LowerError::HelperArityMismatch {
                region,
                helper,
                got,
                want,
            } => write!(
                f,
                "[{region}] helper {helper} called with {got} arguments but declared with {want} parameters"
            ),
        }
    }
}

impl std::error::Error for LowerError {}

/// Scope carried by [`check_region`]'s walk: declared names plus the loop
/// variables currently in scope (a stack, so shadowing behaves exactly as in
/// the lowering context).
struct CheckScope<'a> {
    region: &'a str,
    size_params: &'a [String],
    arrays: HashMap<&'a str, &'a [String]>,
    helpers: HashMap<&'a str, usize>,
    loop_vars: Vec<&'a str>,
}

impl CheckScope<'_> {
    fn has_size_param(&self, name: &str) -> bool {
        // pnp-lint: allow(hash-iter) — this `size_params` is the declaration-order slice, not the LowerCtx map
        self.size_params.iter().any(|p| p == name)
    }

    fn has_loop_var(&self, name: &str) -> bool {
        self.loop_vars.contains(&name)
    }

    fn err_region(&self) -> String {
        self.region.to_string()
    }
}

/// Statically checks one region for every defect that would make
/// [`lower_kernel`] panic (plus undeclared-helper calls, which lower but then
/// fail module verification). Returns the first defect found in source order.
pub fn check_region(region: &RegionSource) -> Result<(), LowerError> {
    let mut scope = CheckScope {
        region: &region.name,
        size_params: &region.size_params,
        arrays: region
            .arrays
            .iter()
            .map(|a| (a.name.as_str(), a.dims.as_slice()))
            .collect(),
        helpers: region
            .helpers
            .iter()
            .map(|h| (h.name.as_str(), h.num_params))
            .collect(),
        loop_vars: Vec::new(),
    };
    // Non-leading dims must be size parameters for row-major flattening.
    for a in &region.arrays {
        for dim in a.dims.iter().skip(1) {
            if !scope.has_size_param(dim) {
                return Err(LowerError::UnknownDimParam {
                    region: scope.err_region(),
                    array: a.name.clone(),
                    param: dim.clone(),
                });
            }
        }
    }
    check_loop(&region.parallel_loop, &mut scope)
}

fn check_loop<'a>(l: &'a LoopNest, scope: &mut CheckScope<'a>) -> Result<(), LowerError> {
    match &l.bound {
        LoopBound::Const(_) => {} // zero- and negative-trip loops lower fine
        LoopBound::Param(p) => {
            if !scope.has_size_param(p) {
                return Err(LowerError::UnknownSizeParam {
                    region: scope.err_region(),
                    param: p.clone(),
                });
            }
        }
        LoopBound::Var(v) | LoopBound::VarPlus(v, _) => {
            if !scope.has_loop_var(v) {
                return Err(LowerError::UnknownLoopVar {
                    region: scope.err_region(),
                    var: v.clone(),
                });
            }
        }
    }
    scope.loop_vars.push(&l.var);
    let result = l.body.iter().try_for_each(|s| check_stmt(s, scope));
    scope.loop_vars.pop();
    result
}

fn check_stmt<'a>(stmt: &'a Stmt, scope: &mut CheckScope<'a>) -> Result<(), LowerError> {
    match stmt {
        Stmt::Assign { target, value } | Stmt::Accumulate { target, value, .. } => {
            check_aref(target, scope)?;
            check_expr(value, scope)
        }
        Stmt::ScalarAssign { value, .. } | Stmt::ScalarAccumulate { value, .. } => {
            check_expr(value, scope)
        }
        Stmt::If {
            lhs,
            rhs,
            then_body,
            else_body,
            ..
        } => {
            check_expr(lhs, scope)?;
            check_expr(rhs, scope)?;
            then_body.iter().try_for_each(|s| check_stmt(s, scope))?;
            else_body.iter().try_for_each(|s| check_stmt(s, scope))
        }
        Stmt::Loop(inner) => check_loop(inner, scope),
        Stmt::CallStmt { name, args } => {
            check_call(name, args, scope)?;
            args.iter().try_for_each(|a| check_expr(a, scope))
        }
    }
}

fn check_expr<'a>(expr: &'a Expr, scope: &mut CheckScope<'a>) -> Result<(), LowerError> {
    match expr {
        Expr::Const(_) | Expr::IntConst(_) | Expr::Scalar(_) => Ok(()),
        Expr::LoopVar(v) => {
            if scope.has_loop_var(v) {
                Ok(())
            } else {
                Err(LowerError::UnknownLoopVar {
                    region: scope.err_region(),
                    var: v.clone(),
                })
            }
        }
        Expr::Load(aref) => check_aref(aref, scope),
        Expr::Binary(_, lhs, rhs) => {
            check_expr(lhs, scope)?;
            check_expr(rhs, scope)
        }
        Expr::Neg(inner) => check_expr(inner, scope),
        Expr::Math(_, args) => args.iter().try_for_each(|a| check_expr(a, scope)),
        Expr::CallHelper(name, args) => {
            check_call(name, args, scope)?;
            args.iter().try_for_each(|a| check_expr(a, scope))
        }
    }
}

fn check_call(name: &str, args: &[Expr], scope: &CheckScope<'_>) -> Result<(), LowerError> {
    match scope.helpers.get(name) {
        None => Err(LowerError::UnknownHelper {
            region: scope.err_region(),
            helper: name.to_string(),
        }),
        Some(&want) if args.len() != want => Err(LowerError::HelperArityMismatch {
            region: scope.err_region(),
            helper: name.to_string(),
            got: args.len(),
            want,
        }),
        Some(_) => Ok(()),
    }
}

fn check_aref(aref: &ArrayRef, scope: &CheckScope<'_>) -> Result<(), LowerError> {
    let dims = match scope.arrays.get(aref.array.as_str()) {
        Some(dims) => *dims,
        None => {
            return Err(LowerError::UnknownArray {
                region: scope.err_region(),
                array: aref.array.clone(),
            })
        }
    };
    if aref.indices.len() != dims.len() {
        return Err(LowerError::IndexArityMismatch {
            region: scope.err_region(),
            array: aref.array.clone(),
            got: aref.indices.len(),
            want: dims.len(),
        });
    }
    for idx in &aref.indices {
        for (var, _) in &idx.terms {
            if !scope.has_loop_var(var) && !scope.has_size_param(var) {
                return Err(LowerError::UnknownIndexVar {
                    region: scope.err_region(),
                    var: var.clone(),
                });
            }
        }
    }
    Ok(())
}

/// Checked lowering: validates every region with [`check_region`] (plus
/// cross-region name uniqueness) and only then runs [`lower_kernel`], so
/// malformed input surfaces as a typed [`LowerError`] instead of a panic.
pub fn try_lower_kernel(app_name: &str, regions: &[RegionSource]) -> Result<Module, LowerError> {
    for (i, region) in regions.iter().enumerate() {
        if regions[..i].iter().any(|r| r.name == region.name) {
            return Err(LowerError::DuplicateRegionName {
                name: region.name.clone(),
            });
        }
        check_region(region)?;
    }
    Ok(lower_kernel(app_name, regions))
}

/// Synthesizes a helper function body: a chain of `body_ops` floating-point
/// operations over its parameters, returning a double.
fn synthesize_helper(helper: &HelperFn) -> Function {
    let params: Vec<(String, Type)> = (0..helper.num_params.max(1))
        .map(|i| (format!("p{i}"), Type::F64))
        .collect();
    let mut b = FunctionBuilder::new(helper.name.clone(), params, Type::F64);
    let mut acc = Operand::Arg(0);
    for op_idx in 0..helper.body_ops.max(1) {
        let other = Operand::Arg(op_idx % helper.num_params.max(1));
        let opcode = match op_idx % 4 {
            0 => Opcode::FMul,
            1 => Opcode::FAdd,
            2 => Opcode::FSub,
            _ => Opcode::FDiv,
        };
        let id = b.push(opcode, Type::F64, vec![acc.clone(), other]);
        acc = Operand::Inst(id);
    }
    b.push(Opcode::Ret, Type::Void, vec![acc]);
    b.finish()
}

/// Lowers a single region to its outlined function.
pub fn lower_region(region: &RegionSource) -> Function {
    // Parameter list mirrors Clang's outlined signature:
    //   (i32* .global_tid, i32* .bound_tid, sizes..., scalars..., arrays...)
    let mut params: Vec<(String, Type)> = vec![
        (".global_tid".into(), Type::I32.ptr()),
        (".bound_tid".into(), Type::I32.ptr()),
    ];
    let mut size_params = HashMap::new();
    for s in &region.size_params {
        size_params.insert(s.clone(), params.len());
        params.push((s.clone(), Type::I32));
    }
    let mut scalar_params = HashMap::new();
    for s in &region.scalars {
        scalar_params.insert(s.clone(), params.len());
        params.push((s.clone(), Type::F64));
    }
    let mut arrays = HashMap::new();
    for a in &region.arrays {
        let ty = elem_type(a.elem);
        arrays.insert(a.name.clone(), (params.len(), ty.clone(), a.dims.clone()));
        params.push((a.name.clone(), ty.ptr()));
    }

    let mut b = FunctionBuilder::new(outlined_name(&region.name), params, Type::Void);
    b.mark_outlined();

    let mut ctx = Ctx {
        loop_vars: HashMap::new(),
        scalar_slots: HashMap::new(),
        arrays,
        scalar_params,
        size_params,
    };

    lower_loop(&mut b, &mut ctx, &region.parallel_loop);
    b.ret_void();
    b.finish()
}

/// Lowers a counted loop `for var in 0..bound`.
fn lower_loop(b: &mut FunctionBuilder, ctx: &mut Ctx, l: &LoopNest) {
    let header = b.new_block(format!("for.header.{}", l.var));
    let body = b.new_block(format!("for.body.{}", l.var));
    let latch = b.new_block(format!("for.latch.{}", l.var));
    let exit = b.new_block(format!("for.exit.{}", l.var));

    let preheader = b.current_block();
    b.br(header);

    // Header: phi for the induction variable, bound check.
    b.switch_to(header);
    let iv = b.push(
        Opcode::Phi,
        Type::I32,
        vec![Operand::const_i32(0), Operand::Block(preheader)],
    );
    let bound = lower_bound(b, ctx, &l.bound);
    let cmp = b.push(Opcode::ICmp, Type::I1, vec![Operand::Inst(iv), bound]);
    b.cond_br(cmp, body, exit);

    // Body.
    b.switch_to(body);
    let shadowed = ctx.loop_vars.insert(l.var.clone(), iv);
    for stmt in &l.body {
        lower_stmt(b, ctx, stmt);
    }
    b.br(latch);

    // Latch: increment and loop back; patch the phi with the latch incoming.
    b.switch_to(latch);
    let next = b.push(
        Opcode::Add,
        Type::I32,
        vec![Operand::Inst(iv), Operand::const_i32(1)],
    );
    b.br(header);
    b.set_operands(
        iv,
        vec![
            Operand::const_i32(0),
            Operand::Block(preheader),
            Operand::Inst(next),
            Operand::Block(latch),
        ],
    );

    // Restore any shadowed outer loop variable with the same name.
    match shadowed {
        Some(outer) => {
            ctx.loop_vars.insert(l.var.clone(), outer);
        }
        None => {
            ctx.loop_vars.remove(&l.var);
        }
    }

    b.switch_to(exit);
}

/// Lowers a loop bound to an i32 operand.
fn lower_bound(b: &mut FunctionBuilder, ctx: &Ctx, bound: &LoopBound) -> Operand {
    match bound {
        LoopBound::Const(c) => Operand::const_i32(*c),
        LoopBound::Param(p) => Operand::Arg(
            *ctx.size_params
                .get(p)
                .unwrap_or_else(|| panic!("unknown size parameter {p}")),
        ),
        LoopBound::Var(v) => Operand::Inst(
            *ctx.loop_vars
                .get(v)
                .unwrap_or_else(|| panic!("unknown loop variable {v} used as bound")),
        ),
        LoopBound::VarPlus(v, k) => {
            let iv = *ctx
                .loop_vars
                .get(v)
                .unwrap_or_else(|| panic!("unknown loop variable {v} used as bound"));
            let id = b.push(
                Opcode::Add,
                Type::I32,
                vec![Operand::Inst(iv), Operand::const_i32(*k)],
            );
            Operand::Inst(id)
        }
    }
}

/// Lowers a statement.
fn lower_stmt(b: &mut FunctionBuilder, ctx: &mut Ctx, stmt: &Stmt) {
    match stmt {
        Stmt::Assign { target, value } => {
            let v = lower_expr(b, ctx, value);
            let (addr, ty) = lower_address(b, ctx, target);
            let v = coerce(b, v, &ty);
            b.push(Opcode::Store, Type::Void, vec![v, Operand::Inst(addr)]);
        }
        Stmt::Accumulate { target, op, value } => {
            let v = lower_expr(b, ctx, value);
            let (addr, ty) = lower_address(b, ctx, target);
            let old = b.push(Opcode::Load, ty.clone(), vec![Operand::Inst(addr)]);
            let v = coerce(b, v, &ty);
            let combined = lower_binop(b, *op, &ty, Operand::Inst(old), v);
            b.push(
                Opcode::Store,
                Type::Void,
                vec![combined, Operand::Inst(addr)],
            );
        }
        Stmt::ScalarAssign { name, value } => {
            let v = lower_expr(b, ctx, value);
            let slot = scalar_slot(b, ctx, name);
            let v = coerce(b, v, &Type::F64);
            b.push(Opcode::Store, Type::Void, vec![v, Operand::Inst(slot)]);
        }
        Stmt::ScalarAccumulate { name, op, value } => {
            let v = lower_expr(b, ctx, value);
            let slot = scalar_slot(b, ctx, name);
            let old = b.push(Opcode::Load, Type::F64, vec![Operand::Inst(slot)]);
            let v = coerce(b, v, &Type::F64);
            let combined = lower_binop(b, *op, &Type::F64, Operand::Inst(old), v);
            b.push(
                Opcode::Store,
                Type::Void,
                vec![combined, Operand::Inst(slot)],
            );
        }
        Stmt::If {
            lhs,
            cmp,
            rhs,
            then_body,
            else_body,
        } => {
            let l = lower_expr(b, ctx, lhs);
            let r = lower_expr(b, ctx, rhs);
            // Comparison opcode depends on operand kind; we compare as doubles
            // unless both sides are clearly integers.
            let int_cmp = matches!(lhs, Expr::IntConst(_) | Expr::LoopVar(_))
                && matches!(rhs, Expr::IntConst(_) | Expr::LoopVar(_));
            let opcode = if int_cmp { Opcode::ICmp } else { Opcode::FCmp };
            let (l, r) = if int_cmp {
                (int_value(b, ctx, lhs, l), int_value(b, ctx, rhs, r))
            } else {
                (coerce(b, l, &Type::F64), coerce(b, r, &Type::F64))
            };
            let _ = cmp; // comparison predicate is carried by node text granularity
            let cond = b.push(opcode, Type::I1, vec![l, r]);

            let then_bb = b.new_block("if.then");
            let else_bb = b.new_block("if.else");
            let merge_bb = b.new_block("if.end");
            b.cond_br(cond, then_bb, else_bb);

            b.switch_to(then_bb);
            for s in then_body {
                lower_stmt(b, ctx, s);
            }
            b.br(merge_bb);

            b.switch_to(else_bb);
            for s in else_body {
                lower_stmt(b, ctx, s);
            }
            b.br(merge_bb);

            b.switch_to(merge_bb);
        }
        Stmt::Loop(inner) => lower_loop(b, ctx, inner),
        Stmt::CallStmt { name, args } => {
            let mut operands = vec![Operand::Func(name.clone())];
            for a in args {
                let v = lower_expr(b, ctx, a);
                operands.push(coerce(b, v, &Type::F64));
            }
            b.push(Opcode::Call, Type::Void, operands);
        }
    }
}

/// Gets (lazily creating) the alloca slot for a scalar temporary.
fn scalar_slot(b: &mut FunctionBuilder, ctx: &mut Ctx, name: &str) -> InstId {
    if let Some(&slot) = ctx.scalar_slots.get(name) {
        return slot;
    }
    // Allocas conceptually live in the entry block; appending at the current
    // point keeps the builder simple and does not change the graph topology
    // meaningfully.
    let slot = b.push(Opcode::Alloca, Type::F64.ptr(), vec![]);
    ctx.scalar_slots.insert(name.to_string(), slot);
    slot
}

/// Lowers an array reference to an element address; returns `(gep id, elem type)`.
fn lower_address(b: &mut FunctionBuilder, ctx: &mut Ctx, aref: &ArrayRef) -> (InstId, Type) {
    let (arg_idx, ty, dims) = ctx
        .arrays
        .get(&aref.array)
        .unwrap_or_else(|| panic!("unknown array {}", aref.array))
        .clone();
    assert_eq!(
        aref.indices.len(),
        dims.len(),
        "array {} accessed with {} indices but declared with {} dims",
        aref.array,
        aref.indices.len(),
        dims.len()
    );

    // Row-major flattening: flat = ((i0 * D1 + i1) * D2 + i2) ...
    let mut flat = lower_index(b, ctx, &aref.indices[0]);
    for (k, idx) in aref.indices.iter().enumerate().skip(1) {
        let dim_arg = Operand::Arg(
            *ctx.size_params
                .get(&dims[k])
                .unwrap_or_else(|| panic!("unknown dimension parameter {}", dims[k])),
        );
        let scaled = b.push(Opcode::Mul, Type::I32, vec![flat, dim_arg]);
        let idx_v = lower_index(b, ctx, idx);
        let sum = b.push(Opcode::Add, Type::I32, vec![Operand::Inst(scaled), idx_v]);
        flat = Operand::Inst(sum);
    }
    let wide = b.push(Opcode::SExt, Type::I64, vec![flat]);
    let gep = b.push(
        Opcode::GetElementPtr,
        ty.clone().ptr(),
        vec![Operand::Arg(arg_idx), Operand::Inst(wide)],
    );
    (gep, ty)
}

/// Lowers an affine index expression to an i32 operand.
fn lower_index(b: &mut FunctionBuilder, ctx: &Ctx, idx: &IndexExpr) -> Operand {
    let mut acc: Option<Operand> = None;
    for (var, scale) in &idx.terms {
        let base = if let Some(&iv) = ctx.loop_vars.get(var) {
            Operand::Inst(iv)
        } else if let Some(&arg) = ctx.size_params.get(var) {
            Operand::Arg(arg)
        } else {
            panic!("index expression references unknown variable {var}");
        };
        let term = if *scale == 1 {
            base
        } else {
            Operand::Inst(b.push(
                Opcode::Mul,
                Type::I32,
                vec![base, Operand::const_i32(*scale)],
            ))
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => Operand::Inst(b.push(Opcode::Add, Type::I32, vec![prev, term])),
        });
    }
    let mut out = acc.unwrap_or_else(|| Operand::const_i32(0));
    if idx.offset != 0 {
        out = Operand::Inst(b.push(
            Opcode::Add,
            Type::I32,
            vec![out, Operand::const_i32(idx.offset)],
        ));
    }
    out
}

/// Lowers a binary op on values of element type `ty`.
fn lower_binop(
    b: &mut FunctionBuilder,
    op: BinOp,
    ty: &Type,
    lhs: Operand,
    rhs: Operand,
) -> Operand {
    let float = ty.is_float();
    let opcode = match (op, float) {
        (BinOp::Add, true) => Opcode::FAdd,
        (BinOp::Sub, true) => Opcode::FSub,
        (BinOp::Mul, true) => Opcode::FMul,
        (BinOp::Div, true) => Opcode::FDiv,
        (BinOp::Add, false) => Opcode::Add,
        (BinOp::Sub, false) => Opcode::Sub,
        (BinOp::Mul, false) => Opcode::Mul,
        (BinOp::Div, false) => Opcode::SDiv,
        (BinOp::Min | BinOp::Max, _) => {
            // min/max lower to compare + select
            let cmp_op = if float { Opcode::FCmp } else { Opcode::ICmp };
            let cond = b.push(cmp_op, Type::I1, vec![lhs.clone(), rhs.clone()]);
            let sel = b.push(
                Opcode::Select,
                ty.clone(),
                vec![Operand::Inst(cond), lhs, rhs],
            );
            return Operand::Inst(sel);
        }
    };
    Operand::Inst(b.push(opcode, ty.clone(), vec![lhs, rhs]))
}

/// Lowers an expression; the result operand is a double unless the expression
/// is a pure integer/index expression.
fn lower_expr(b: &mut FunctionBuilder, ctx: &mut Ctx, expr: &Expr) -> Operand {
    match expr {
        Expr::Const(c) => Operand::const_f64(*c),
        Expr::IntConst(c) => Operand::const_i32(*c),
        Expr::Scalar(name) => {
            if let Some(&arg) = ctx.scalar_params.get(name) {
                Operand::Arg(arg)
            } else if let Some(&slot) = ctx.scalar_slots.get(name) {
                Operand::Inst(b.push(Opcode::Load, Type::F64, vec![Operand::Inst(slot)]))
            } else if let Some(&arg) = ctx.size_params.get(name) {
                // A size parameter used as a value: convert to double.
                Operand::Inst(b.push(Opcode::SIToFP, Type::F64, vec![Operand::Arg(arg)]))
            } else {
                // First use of an unassigned scalar temporary: create its slot
                // and load (value is undefined, like reading uninitialized C).
                let slot = scalar_slot(b, ctx, name);
                Operand::Inst(b.push(Opcode::Load, Type::F64, vec![Operand::Inst(slot)]))
            }
        }
        Expr::LoopVar(v) => {
            let iv = *ctx
                .loop_vars
                .get(v)
                .unwrap_or_else(|| panic!("unknown loop variable {v}"));
            Operand::Inst(b.push(Opcode::SIToFP, Type::F64, vec![Operand::Inst(iv)]))
        }
        Expr::Load(aref) => {
            let (addr, ty) = lower_address(b, ctx, aref);
            let loaded = b.push(Opcode::Load, ty.clone(), vec![Operand::Inst(addr)]);
            if ty == Type::I32 {
                Operand::Inst(b.push(Opcode::SIToFP, Type::F64, vec![Operand::Inst(loaded)]))
            } else {
                Operand::Inst(loaded)
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let l = lower_expr(b, ctx, lhs);
            let r = lower_expr(b, ctx, rhs);
            let l = coerce(b, l, &Type::F64);
            let r = coerce(b, r, &Type::F64);
            lower_binop(b, *op, &Type::F64, l, r)
        }
        Expr::Neg(inner) => {
            let v = lower_expr(b, ctx, inner);
            let v = coerce(b, v, &Type::F64);
            Operand::Inst(b.push(Opcode::FNeg, Type::F64, vec![v]))
        }
        Expr::Math(f, args) => {
            let opcode = match f {
                MathFn::Sqrt => Opcode::Sqrt,
                MathFn::Exp => Opcode::Exp,
                MathFn::Log => Opcode::Log,
                MathFn::Fabs => Opcode::Fabs,
                MathFn::Pow => Opcode::Pow,
                MathFn::Sin => Opcode::Sin,
                MathFn::Cos => Opcode::Cos,
            };
            let operands: Vec<Operand> = args
                .iter()
                .map(|a| {
                    let v = lower_expr(b, ctx, a);
                    coerce(b, v, &Type::F64)
                })
                .collect();
            Operand::Inst(b.push(opcode, Type::F64, operands))
        }
        Expr::CallHelper(name, args) => {
            let mut operands = vec![Operand::Func(name.clone())];
            for a in args {
                let v = lower_expr(b, ctx, a);
                operands.push(coerce(b, v, &Type::F64));
            }
            Operand::Inst(b.push(Opcode::Call, Type::F64, operands))
        }
    }
}

/// Returns an integer-typed operand for a value known to be integral.
fn int_value(b: &mut FunctionBuilder, ctx: &Ctx, expr: &Expr, lowered: Operand) -> Operand {
    match expr {
        Expr::LoopVar(v) => Operand::Inst(ctx.loop_vars[v]),
        Expr::IntConst(c) => Operand::const_i32(*c),
        _ => {
            // Fall back to a float-to-int conversion of whatever was lowered.
            Operand::Inst(b.push(Opcode::FPToSI, Type::I32, vec![lowered]))
        }
    }
}

/// Inserts an int→float conversion when a double is required but an integer
/// operand was produced.
fn coerce(_b: &mut FunctionBuilder, op: Operand, want: &Type) -> Operand {
    if !want.is_float() {
        return op;
    }
    match &op {
        Operand::Const(c) if c.ty.is_int() => {
            Operand::const_f64(c.text.parse::<f64>().unwrap_or(0.0))
        }
        _ => op,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{ArrayDecl, CmpOp, OmpPragma};
    use crate::verify::verify_module;

    fn vector_add_region() -> RegionSource {
        // #pragma omp parallel for: C[i] = A[i] + B[i]
        RegionSource {
            name: "vadd_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![
                ArrayDecl::d1("A", "N"),
                ArrayDecl::d1("B", "N"),
                ArrayDecl::d1("C", "N"),
            ],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("C", IndexExpr::var("i")),
                    value: Expr::add(
                        Expr::load1("A", IndexExpr::var("i")),
                        Expr::load1("B", IndexExpr::var("i")),
                    ),
                }],
            ),
        }
    }

    fn reduction_region() -> RegionSource {
        // #pragma omp parallel for reduction(+:sum): sum += A[i]*B[i]
        RegionSource {
            name: "dot_r0".into(),
            pragma: OmpPragma {
                reduction: Some((BinOp::Add, "sum".into())),
                ..OmpPragma::default()
            },
            arrays: vec![ArrayDecl::d1("A", "N"), ArrayDecl::d1("B", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::ScalarAccumulate {
                    name: "sum".into(),
                    op: BinOp::Add,
                    value: Expr::mul(
                        Expr::load1("A", IndexExpr::var("i")),
                        Expr::load1("B", IndexExpr::var("i")),
                    ),
                }],
            ),
        }
    }

    #[test]
    fn vector_add_lowers_and_verifies() {
        let m = lower_kernel("vadd", &[vector_add_region()]);
        assert!(verify_module(&m).is_ok(), "{:?}", verify_module(&m));
        let regions = m.outlined_regions();
        assert_eq!(regions.len(), 1);
        let f = regions[0];
        assert_eq!(f.name, ".omp_outlined.vadd_r0");
        // loop skeleton: entry + header + body + latch + exit = 5 blocks
        assert_eq!(f.blocks.len(), 5);
        let hist = f.opcode_histogram();
        assert_eq!(hist[&Opcode::Load], 2);
        assert_eq!(hist[&Opcode::Store], 1);
        assert_eq!(hist[&Opcode::FAdd], 1);
        assert_eq!(hist[&Opcode::Phi], 1);
    }

    #[test]
    fn host_function_calls_every_region() {
        let m = lower_kernel("app", &[vector_add_region(), reduction_region()]);
        let host = m.function("app.host").expect("host exists");
        assert_eq!(host.callees().len(), 2);
        assert!(host
            .callees()
            .contains(&".omp_outlined.vadd_r0".to_string()));
    }

    #[test]
    fn reduction_uses_alloca_load_store() {
        let m = lower_kernel("dot", &[reduction_region()]);
        assert!(verify_module(&m).is_ok());
        let f = &m.outlined_regions()[0];
        let hist = f.opcode_histogram();
        assert_eq!(hist[&Opcode::Alloca], 1);
        // 2 array loads + 1 accumulator load
        assert_eq!(hist[&Opcode::Load], 3);
        assert_eq!(hist[&Opcode::FMul], 1);
        assert_eq!(hist[&Opcode::FAdd], 1);
    }

    #[test]
    fn triangular_loop_bound_uses_outer_iv() {
        // for i in 0..N { for j in 0..i { A[i][j] = 0 } }
        let region = RegionSource {
            name: "tri_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d2("A", "N", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Loop(LoopNest::new(
                    "j",
                    LoopBound::Var("i".into()),
                    vec![Stmt::Assign {
                        target: ArrayRef::d2("A", IndexExpr::var("i"), IndexExpr::var("j")),
                        value: Expr::Const(0.0),
                    }],
                ))],
            ),
        };
        let m = lower_kernel("tri", &[region]);
        assert!(verify_module(&m).is_ok(), "{:?}", verify_module(&m));
        let f = &m.outlined_regions()[0];
        // two loops → two phis
        assert_eq!(f.opcode_histogram()[&Opcode::Phi], 2);
        // 9 blocks: entry + 2 × (header, body, latch, exit)
        assert_eq!(f.blocks.len(), 9);
    }

    #[test]
    fn helper_calls_produce_call_instructions_and_functions() {
        let region = RegionSource {
            name: "phys_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("X", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![HelperFn {
                name: "compute_force".into(),
                num_params: 2,
                body_ops: 6,
            }],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("X", IndexExpr::var("i")),
                    value: Expr::CallHelper(
                        "compute_force".into(),
                        vec![Expr::load1("X", IndexExpr::var("i")), Expr::Const(1.5)],
                    ),
                }],
            ),
        };
        let m = lower_kernel("phys", &[region]);
        assert!(verify_module(&m).is_ok());
        assert!(m.function("compute_force").is_some());
        let f = &m.outlined_regions()[0];
        assert_eq!(f.callees(), vec!["compute_force".to_string()]);
    }

    #[test]
    fn conditional_creates_diamond_cfg() {
        let region = RegionSource {
            name: "cond_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N")],
            scalars: vec!["thresh".into()],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::If {
                    lhs: Expr::load1("A", IndexExpr::var("i")),
                    cmp: CmpOp::Gt,
                    rhs: Expr::Scalar("thresh".into()),
                    then_body: vec![Stmt::Assign {
                        target: ArrayRef::d1("A", IndexExpr::var("i")),
                        value: Expr::Const(1.0),
                    }],
                    else_body: vec![Stmt::Assign {
                        target: ArrayRef::d1("A", IndexExpr::var("i")),
                        value: Expr::Const(0.0),
                    }],
                }],
            ),
        };
        let m = lower_kernel("cond", &[region]);
        assert!(verify_module(&m).is_ok());
        let f = &m.outlined_regions()[0];
        let hist = f.opcode_histogram();
        assert_eq!(hist[&Opcode::FCmp], 1);
        assert_eq!(hist[&Opcode::CondBr], 2); // loop + if
        assert_eq!(hist[&Opcode::Store], 2);
        // 8 blocks: entry, header, body, then, else, end, latch, exit
        assert_eq!(f.blocks.len(), 8);
    }

    #[test]
    fn stencil_offsets_generate_add_instructions() {
        // B[i] = (A[i-1] + A[i] + A[i+1]) / 3
        let region = RegionSource {
            name: "stencil_r0".into(),
            pragma: OmpPragma::default(),
            arrays: vec![ArrayDecl::d1("A", "N"), ArrayDecl::d1("B", "N")],
            scalars: vec![],
            size_params: vec!["N".into()],
            helpers: vec![],
            parallel_loop: LoopNest::new(
                "i",
                LoopBound::Param("N".into()),
                vec![Stmt::Assign {
                    target: ArrayRef::d1("B", IndexExpr::var("i")),
                    value: Expr::div(
                        Expr::add(
                            Expr::add(
                                Expr::load1("A", IndexExpr::var_plus("i", -1)),
                                Expr::load1("A", IndexExpr::var("i")),
                            ),
                            Expr::load1("A", IndexExpr::var_plus("i", 1)),
                        ),
                        Expr::Const(3.0),
                    ),
                }],
            ),
        };
        let m = lower_kernel("stencil", &[region]);
        assert!(verify_module(&m).is_ok());
        let f = &m.outlined_regions()[0];
        let hist = f.opcode_histogram();
        assert_eq!(hist[&Opcode::Load], 3);
        assert_eq!(hist[&Opcode::FDiv], 1);
        // offsets i-1 and i+1 each add one integer Add, plus the latch Add
        assert!(hist[&Opcode::Add] >= 3);
    }
}
