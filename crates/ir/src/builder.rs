//! A small builder API for constructing functions instruction-by-instruction.

use crate::block::BasicBlock;
use crate::function::Function;
use crate::inst::{Instruction, Opcode};
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};

/// A misuse of [`FunctionBuilder`], reported by the `try_*` methods instead
/// of panicking. The panicking methods remain for internal lowering code
/// whose inputs are pre-validated (`pnp_ir::lower::check_region`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// The target of a `switch_to` was never created with `new_block`.
    UnknownBlock {
        /// The missing block id.
        block: crate::value::BlockId,
    },
    /// An instruction was appended to a block that already ends in a
    /// terminator.
    TerminatedBlock {
        /// Label of the already-terminated block.
        block: String,
        /// Function under construction.
        function: String,
    },
    /// `set_operands` named an instruction id that does not exist.
    UnknownInstruction {
        /// The missing instruction id.
        inst: InstId,
    },
    /// `try_finish` found blocks with no terminator (they would fail module
    /// verification).
    UnterminatedBlocks {
        /// Labels of the offending blocks.
        labels: Vec<String>,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownBlock { block } => write!(f, "switch_to unknown block {block}"),
            BuildError::TerminatedBlock { block, function } => {
                write!(
                    f,
                    "appending to already-terminated block {block} in {function}"
                )
            }
            BuildError::UnknownInstruction { inst } => {
                write!(f, "set_operands: unknown instruction {inst}")
            }
            BuildError::UnterminatedBlocks { labels } => {
                write!(f, "unterminated blocks: {}", labels.join(", "))
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a [`Function`] by appending instructions to a "current" block, in
/// the style of LLVM's `IRBuilder`.
pub struct FunctionBuilder {
    func: Function,
    next_inst: InstId,
    next_block: BlockId,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a new function with an `entry` block selected.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Self {
        let mut func = Function::new(name, params, ret_ty);
        func.blocks.push(BasicBlock::new(0, "entry"));
        FunctionBuilder {
            func,
            next_inst: 0,
            next_block: 1,
            current: 0,
        }
    }

    /// Marks the function as an outlined OpenMP region.
    pub fn mark_outlined(&mut self) {
        self.func.is_outlined_region = true;
    }

    /// Creates a new (empty) block and returns its id. Does not change the
    /// insertion point.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.next_block;
        self.next_block += 1;
        self.func.blocks.push(BasicBlock::new(id, label));
        id
    }

    /// Moves the insertion point to `block`.
    ///
    /// # Panics
    /// If `block` was never created; see [`FunctionBuilder::try_switch_to`].
    pub fn switch_to(&mut self, block: BlockId) {
        if let Err(e) = self.try_switch_to(block) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`FunctionBuilder::switch_to`].
    pub fn try_switch_to(&mut self, block: BlockId) -> Result<(), BuildError> {
        if self.func.blocks.iter().any(|b| b.id == block) {
            self.current = block;
            Ok(())
        } else {
            Err(BuildError::UnknownBlock { block })
        }
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Index of the parameter named `name`, if any.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.func.params.iter().position(|(n, _)| n == name)
    }

    /// Appends an instruction and returns its id (= the SSA value it defines).
    ///
    /// # Panics
    /// If the current block is already terminated; see
    /// [`FunctionBuilder::try_push`].
    pub fn push(&mut self, opcode: Opcode, ty: Type, operands: Vec<Operand>) -> InstId {
        match self.try_push(opcode, ty, operands) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible twin of [`FunctionBuilder::push`].
    pub fn try_push(
        &mut self,
        opcode: Opcode,
        ty: Type,
        operands: Vec<Operand>,
    ) -> Result<InstId, BuildError> {
        let block = self
            .func
            .blocks
            .iter_mut()
            .find(|b| b.id == self.current)
            // pnp-lint: allow(unwrap) — `current` only ever holds ids of blocks this builder created
            .expect("current block exists");
        if block.is_terminated() {
            return Err(BuildError::TerminatedBlock {
                block: block.label.clone(),
                function: self.func.name.clone(),
            });
        }
        let id = self.next_inst;
        self.next_inst += 1;
        block.insts.push(Instruction::new(id, opcode, ty, operands));
        Ok(id)
    }

    /// Appends an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Opcode::Br, Type::Void, vec![Operand::Block(target)]);
    }

    /// Appends a conditional branch.
    pub fn cond_br(&mut self, cond: InstId, then_bb: BlockId, else_bb: BlockId) {
        self.push(
            Opcode::CondBr,
            Type::Void,
            vec![
                Operand::Inst(cond),
                Operand::Block(then_bb),
                Operand::Block(else_bb),
            ],
        );
    }

    /// Appends `ret void`.
    pub fn ret_void(&mut self) {
        self.push(Opcode::Ret, Type::Void, vec![]);
    }

    /// Replaces the operands of an existing instruction (used to patch phi
    /// nodes once latch values are known).
    ///
    /// # Panics
    /// If `inst` does not exist; see [`FunctionBuilder::try_set_operands`].
    pub fn set_operands(&mut self, inst: InstId, operands: Vec<Operand>) {
        if let Err(e) = self.try_set_operands(inst, operands) {
            panic!("{e}");
        }
    }

    /// Fallible twin of [`FunctionBuilder::set_operands`].
    pub fn try_set_operands(
        &mut self,
        inst: InstId,
        operands: Vec<Operand>,
    ) -> Result<(), BuildError> {
        for block in &mut self.func.blocks {
            for i in &mut block.insts {
                if i.id == inst {
                    i.operands = operands;
                    return Ok(());
                }
            }
        }
        Err(BuildError::UnknownInstruction { inst })
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Finishes the function, but first rejects blocks with no terminator —
    /// the one malformation `finish` lets through and `verify_module` would
    /// only catch later.
    pub fn try_finish(self) -> Result<Function, BuildError> {
        let labels: Vec<String> = self
            .func
            .blocks
            .iter()
            .filter(|b| !b.is_terminated())
            .map(|b| b.label.clone())
            .collect();
        if labels.is_empty() {
            Ok(self.func)
        } else {
            Err(BuildError::UnterminatedBlocks { labels })
        }
    }

    /// Read-only access to the function under construction (for assertions in
    /// tests).
    pub fn function(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_loop_skeleton() {
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I32)], Type::Void);
        let header = b.new_block("loop.header");
        let body = b.new_block("loop.body");
        let exit = b.new_block("loop.exit");

        b.br(header);
        b.switch_to(header);
        let phi = b.push(
            Opcode::Phi,
            Type::I32,
            vec![Operand::const_i32(0), Operand::Block(0)],
        );
        let cmp = b.push(
            Opcode::ICmp,
            Type::I1,
            vec![Operand::Inst(phi), Operand::Arg(0)],
        );
        b.cond_br(cmp, body, exit);

        b.switch_to(body);
        let next = b.push(
            Opcode::Add,
            Type::I32,
            vec![Operand::Inst(phi), Operand::const_i32(1)],
        );
        b.br(header);
        b.set_operands(
            phi,
            vec![
                Operand::const_i32(0),
                Operand::Block(0),
                Operand::Inst(next),
                Operand::Block(body),
            ],
        );

        b.switch_to(exit);
        b.ret_void();

        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_insts(), 7);
        assert_eq!(f.block(header).unwrap().successors(), vec![body, exit]);
        // phi got patched with 4 operands
        let phi_inst = f.inst_map()[&phi].clone();
        assert_eq!(phi_inst.operands.len(), 4);
    }

    #[test]
    #[should_panic]
    fn appending_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.ret_void();
        b.push(Opcode::Add, Type::I32, vec![]);
    }

    #[test]
    fn param_index_lookup() {
        let b = FunctionBuilder::new(
            "f",
            vec![("a".into(), Type::F64.ptr()), ("n".into(), Type::I32)],
            Type::Void,
        );
        assert_eq!(b.param_index("n"), Some(1));
        assert_eq!(b.param_index("zzz"), None);
    }

    #[test]
    fn mark_outlined_sets_flag() {
        let mut b = FunctionBuilder::new("r", vec![], Type::Void);
        b.mark_outlined();
        assert!(b.function().is_outlined_region);
    }
}
