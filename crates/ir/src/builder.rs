//! A small builder API for constructing functions instruction-by-instruction.

use crate::block::BasicBlock;
use crate::function::Function;
use crate::inst::{Instruction, Opcode};
use crate::types::Type;
use crate::value::{BlockId, InstId, Operand};

/// Builds a [`Function`] by appending instructions to a "current" block, in
/// the style of LLVM's `IRBuilder`.
pub struct FunctionBuilder {
    func: Function,
    next_inst: InstId,
    next_block: BlockId,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a new function with an `entry` block selected.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret_ty: Type) -> Self {
        let mut func = Function::new(name, params, ret_ty);
        func.blocks.push(BasicBlock::new(0, "entry"));
        FunctionBuilder {
            func,
            next_inst: 0,
            next_block: 1,
            current: 0,
        }
    }

    /// Marks the function as an outlined OpenMP region.
    pub fn mark_outlined(&mut self) {
        self.func.is_outlined_region = true;
    }

    /// Creates a new (empty) block and returns its id. Does not change the
    /// insertion point.
    pub fn new_block(&mut self, label: impl Into<String>) -> BlockId {
        let id = self.next_block;
        self.next_block += 1;
        self.func.blocks.push(BasicBlock::new(id, label));
        id
    }

    /// Moves the insertion point to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        assert!(
            self.func.blocks.iter().any(|b| b.id == block),
            "switch_to unknown block {block}"
        );
        self.current = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Index of the parameter named `name`, if any.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.func.params.iter().position(|(n, _)| n == name)
    }

    /// Appends an instruction and returns its id (= the SSA value it defines).
    pub fn push(&mut self, opcode: Opcode, ty: Type, operands: Vec<Operand>) -> InstId {
        let id = self.next_inst;
        self.next_inst += 1;
        let block = self
            .func
            .blocks
            .iter_mut()
            .find(|b| b.id == self.current)
            .expect("current block exists");
        assert!(
            !block.is_terminated(),
            "appending to already-terminated block {} in {}",
            block.label,
            self.func.name
        );
        block.insts.push(Instruction::new(id, opcode, ty, operands));
        id
    }

    /// Appends an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.push(Opcode::Br, Type::Void, vec![Operand::Block(target)]);
    }

    /// Appends a conditional branch.
    pub fn cond_br(&mut self, cond: InstId, then_bb: BlockId, else_bb: BlockId) {
        self.push(
            Opcode::CondBr,
            Type::Void,
            vec![
                Operand::Inst(cond),
                Operand::Block(then_bb),
                Operand::Block(else_bb),
            ],
        );
    }

    /// Appends `ret void`.
    pub fn ret_void(&mut self) {
        self.push(Opcode::Ret, Type::Void, vec![]);
    }

    /// Replaces the operands of an existing instruction (used to patch phi
    /// nodes once latch values are known).
    pub fn set_operands(&mut self, inst: InstId, operands: Vec<Operand>) {
        for block in &mut self.func.blocks {
            for i in &mut block.insts {
                if i.id == inst {
                    i.operands = operands;
                    return;
                }
            }
        }
        panic!("set_operands: unknown instruction {inst}");
    }

    /// Finishes the function.
    pub fn finish(self) -> Function {
        self.func
    }

    /// Read-only access to the function under construction (for assertions in
    /// tests).
    pub fn function(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_simple_loop_skeleton() {
        let mut b = FunctionBuilder::new("f", vec![("n".into(), Type::I32)], Type::Void);
        let header = b.new_block("loop.header");
        let body = b.new_block("loop.body");
        let exit = b.new_block("loop.exit");

        b.br(header);
        b.switch_to(header);
        let phi = b.push(
            Opcode::Phi,
            Type::I32,
            vec![Operand::const_i32(0), Operand::Block(0)],
        );
        let cmp = b.push(
            Opcode::ICmp,
            Type::I1,
            vec![Operand::Inst(phi), Operand::Arg(0)],
        );
        b.cond_br(cmp, body, exit);

        b.switch_to(body);
        let next = b.push(
            Opcode::Add,
            Type::I32,
            vec![Operand::Inst(phi), Operand::const_i32(1)],
        );
        b.br(header);
        b.set_operands(
            phi,
            vec![
                Operand::const_i32(0),
                Operand::Block(0),
                Operand::Inst(next),
                Operand::Block(body),
            ],
        );

        b.switch_to(exit);
        b.ret_void();

        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_insts(), 7);
        assert_eq!(f.block(header).unwrap().successors(), vec![body, exit]);
        // phi got patched with 4 operands
        let phi_inst = f.inst_map()[&phi].clone();
        assert_eq!(phi_inst.operands.len(), 4);
    }

    #[test]
    #[should_panic]
    fn appending_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", vec![], Type::Void);
        b.ret_void();
        b.push(Opcode::Add, Type::I32, vec![]);
    }

    #[test]
    fn param_index_lookup() {
        let b = FunctionBuilder::new(
            "f",
            vec![("a".into(), Type::F64.ptr()), ("n".into(), Type::I32)],
            Type::Void,
        );
        assert_eq!(b.param_index("n"), Some(1));
        assert_eq!(b.param_index("zzz"), None);
    }

    #[test]
    fn mark_outlined_sets_flag() {
        let mut b = FunctionBuilder::new("r", vec![], Type::Void);
        b.mark_outlined();
        assert!(b.function().is_outlined_region);
    }
}
