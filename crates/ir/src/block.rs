//! Basic blocks.

use crate::inst::Instruction;
use crate::value::BlockId;
use serde::{Deserialize, Serialize};

/// A basic block: a label plus a straight-line sequence of instructions whose
/// last instruction is a terminator.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Function-unique id used as a branch target.
    pub id: BlockId,
    /// Human-readable label, e.g. `"for.body.j"`.
    pub label: String,
    /// Instructions in program order.
    pub insts: Vec<Instruction>,
}

impl BasicBlock {
    /// Creates an empty block.
    pub fn new(id: BlockId, label: impl Into<String>) -> Self {
        BasicBlock {
            id,
            label: label.into(),
            insts: Vec::new(),
        }
    }

    /// The block's terminator, if it has one yet.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.insts.last().filter(|i| i.opcode.is_terminator())
    }

    /// True once the block ends in a terminator.
    pub fn is_terminated(&self) -> bool {
        self.terminator().is_some()
    }

    /// Ids of successor blocks (empty for `ret`).
    pub fn successors(&self) -> Vec<BlockId> {
        self.terminator()
            .map(|t| t.used_blocks())
            .unwrap_or_default()
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Opcode;
    use crate::types::Type;
    use crate::value::Operand;

    #[test]
    fn empty_block_has_no_terminator() {
        let b = BasicBlock::new(0, "entry");
        assert!(!b.is_terminated());
        assert!(b.successors().is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn successors_come_from_terminator() {
        let mut b = BasicBlock::new(0, "entry");
        b.insts.push(Instruction::new(
            0,
            Opcode::CondBr,
            Type::Void,
            vec![Operand::Inst(9), Operand::Block(1), Operand::Block(2)],
        ));
        assert!(b.is_terminated());
        assert_eq!(b.successors(), vec![1, 2]);
    }

    #[test]
    fn non_terminator_last_instruction() {
        let mut b = BasicBlock::new(0, "body");
        b.insts
            .push(Instruction::new(0, Opcode::Add, Type::I32, vec![]));
        assert!(!b.is_terminated());
        assert_eq!(b.len(), 1);
    }
}
