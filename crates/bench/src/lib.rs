//! # pnp-bench
//!
//! Two kinds of artefacts live here:
//!
//! 1. **Experiment binaries** (`src/bin/`): one per table/figure of the
//!    paper. Each builds the required dataset(s), runs the corresponding
//!    driver from `pnp-core::experiments`, prints the rows/series the paper
//!    plots, and writes a JSON copy under `target/experiments/`.
//!    By default they run the *quick* configuration (reduced epochs / folds)
//!    so the whole set finishes on a single-core machine; set `PNP_FULL=1`
//!    for the paper-fidelity settings.
//! 2. **Criterion micro-benchmarks** (`benches/`): component throughput
//!    (graph construction, RGCN forward/backward, execution-model sweeps,
//!    tuner search, the real parallel-for executor).
//!
//! This library crate only hosts small helpers shared by the binaries.

use pnp_core::training::TrainSettings;

/// Resolves the training settings from the environment (`PNP_FULL=1` for the
/// paper-fidelity configuration) and prints which mode is active.
pub fn settings_from_env() -> TrainSettings {
    let settings = TrainSettings::from_env();
    let mode = if settings.folds >= 30 {
        "FULL"
    } else {
        "quick"
    };
    eprintln!(
        "[pnp-bench] {mode} settings: {} folds, {} epochs, hidden {}, {} RGCN layers",
        settings.folds, settings.epochs, settings.hidden_dim, settings.rgcn_layers
    );
    settings
}

/// Prints a standard header naming the figure/table being regenerated.
pub fn banner(artefact: &str, description: &str) {
    println!("==============================================================");
    println!("{artefact}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_quick() {
        std::env::remove_var("PNP_FULL");
        let s = settings_from_env();
        assert!(s.folds < 30);
    }
}
