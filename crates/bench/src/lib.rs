//! # pnp-bench
//!
//! Two kinds of artefacts live here:
//!
//! 1. **Experiment binaries** (`src/bin/`): one per table/figure of the
//!    paper. Each builds the required dataset(s), runs the corresponding
//!    driver from `pnp-core::experiments`, prints the rows/series the paper
//!    plots, and writes a JSON copy under `target/experiments/`.
//!    By default they run the *quick* configuration (reduced epochs / folds)
//!    so the whole set finishes on a single-core machine; set `PNP_FULL=1`
//!    for the paper-fidelity settings.
//! 2. **Criterion micro-benchmarks** (`benches/`): component throughput
//!    (graph construction, RGCN forward/backward, execution-model sweeps,
//!    tuner search, the real parallel-for executor).
//!
//! This library crate only hosts small helpers shared by the binaries.

use pnp_openmp::Threads;

use pnp_core::training::TrainSettings;

/// Resolves the training settings from the environment (`PNP_FULL=1` for the
/// paper-fidelity configuration) and prints which mode is active.
pub fn settings_from_env() -> TrainSettings {
    let settings = TrainSettings::from_env();
    let mode = if settings.folds >= 30 {
        "FULL"
    } else {
        "quick"
    };
    eprintln!(
        "[pnp-bench] {mode} settings: {} folds, {} epochs, hidden {}, {} RGCN layers",
        settings.folds, settings.epochs, settings.hidden_dim, settings.rgcn_layers
    );
    settings
}

/// Resolves the exhaustive-sweep worker count shared by every experiment
/// binary: a `--sweep-threads N` (or `--sweep-threads=N`) CLI argument wins,
/// then the `PNP_SWEEP_THREADS` environment variable, then auto (one worker
/// per available core). Prints the active setting so experiment logs record
/// how the dataset was built. The dataset itself is bit-identical for every
/// value — the knob only changes wall-clock time.
pub fn sweep_threads_from_env() -> Threads {
    let threads = sweep_threads_from(std::env::args().skip(1), Threads::from_env());
    eprintln!("[pnp-bench] sweep workers: {threads}");
    threads
}

/// Pure core of [`sweep_threads_from_env`]: picks the knob out of an
/// argument list, falling back to `fallback` (unparseable values also fall
/// back rather than aborting a long experiment).
fn sweep_threads_from(args: impl Iterator<Item = String>, fallback: Threads) -> Threads {
    let args: Vec<String> = args.collect();
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix("--sweep-threads=") {
            return Threads::parse(v).unwrap_or(fallback);
        }
        if arg == "--sweep-threads" {
            return args
                .get(i + 1)
                .and_then(|v| Threads::parse(v))
                .unwrap_or(fallback);
        }
    }
    fallback
}

/// Prints a standard header naming the figure/table being regenerated.
pub fn banner(artefact: &str, description: &str) {
    println!("==============================================================");
    println!("{artefact}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_quick() {
        std::env::remove_var("PNP_FULL");
        let s = settings_from_env();
        assert!(s.folds < 30);
    }

    #[test]
    fn sweep_threads_cli_forms_are_accepted() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            sweep_threads_from(args(&["--sweep-threads", "4"]).into_iter(), Threads::Auto),
            Threads::Fixed(4)
        );
        assert_eq!(
            sweep_threads_from(args(&["--sweep-threads=2"]).into_iter(), Threads::Auto),
            Threads::Fixed(2)
        );
        assert_eq!(
            sweep_threads_from(
                args(&["--sweep-threads=auto"]).into_iter(),
                Threads::Fixed(3)
            ),
            Threads::Auto
        );
        // No flag, or an unparseable value: the fallback wins.
        assert_eq!(
            sweep_threads_from(args(&["--other"]).into_iter(), Threads::Fixed(8)),
            Threads::Fixed(8)
        );
        assert_eq!(
            sweep_threads_from(
                args(&["--sweep-threads", "lots"]).into_iter(),
                Threads::Auto
            ),
            Threads::Auto
        );
    }
}
