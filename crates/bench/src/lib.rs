//! # pnp-bench
//!
//! Two kinds of artefacts live here:
//!
//! 1. **Experiment binaries** (`src/bin/`): one per table/figure of the
//!    paper. Each builds the required dataset(s), runs the corresponding
//!    driver from `pnp-core::experiments`, prints the rows/series the paper
//!    plots, and writes a JSON copy under `target/experiments/`.
//!    By default they run the *quick* configuration (reduced epochs / folds)
//!    so the whole set finishes on a single-core machine; set `PNP_FULL=1`
//!    for the paper-fidelity settings.
//! 2. **Criterion micro-benchmarks** (`benches/`): component throughput
//!    (graph construction, RGCN forward/backward, execution-model sweeps,
//!    tuner search, the real parallel-for executor).
//!
//! This library crate only hosts small helpers shared by the binaries.

use pnp_core::training::TrainSettings;
use pnp_machine::{haswell, skylake, MachineSpec};
use pnp_openmp::Threads;

/// CLI options shared by the perf-tracking harnesses (`bench_dataset_build`,
/// `bench_loocv_train`): which worker counts to measure, how much of the
/// suite to use, and the optional speedup gate.
///
/// ```text
/// [--threads 1,2,4,8] [--apps N] [--machine haswell|skylake]
/// [--repeats N] [--min-speedup S:T] [--out PATH]
/// ```
pub struct PerfHarnessOptions {
    /// Worker counts to measure (`--threads`, default `1,2,4,8`). The
    /// 1-worker run is always the determinism anchor and speedup
    /// denominator.
    pub threads: Vec<usize>,
    /// Truncate the application suite to the first `N` apps (`--apps`).
    pub apps: Option<usize>,
    /// Machine model to measure on (`--machine`, default haswell).
    pub machine: MachineSpec,
    /// Best-of-`N` timing repeats (`--repeats`, default 1).
    pub repeats: usize,
    /// `Some((s, t))` (`--min-speedup S:T`): require speedup ≥ `s` at `t`
    /// workers; see [`enforce_min_speedup`].
    pub min_speedup: Option<(f64, usize)>,
    /// Output path of the timing JSON (`--out`).
    pub out: String,
}

impl PerfHarnessOptions {
    /// Parses the process arguments, with the harness-specific default
    /// output path. Panics with a usage message on unknown or malformed
    /// flags — a perf harness should refuse, not guess.
    pub fn parse(default_out: &str) -> Self {
        Self::parse_from(std::env::args().skip(1).collect(), default_out)
    }

    fn parse_from(args: Vec<String>, default_out: &str) -> Self {
        let mut opts = PerfHarnessOptions {
            threads: vec![1, 2, 4, 8],
            apps: None,
            machine: haswell(),
            repeats: 1,
            min_speedup: None,
            out: default_out.to_string(),
        };
        let value = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    let v = value(&args, i, "--threads");
                    opts.threads = v
                        .split(',')
                        .map(|s| s.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                        .collect();
                    i += 2;
                }
                "--apps" => {
                    opts.apps = Some(value(&args, i, "--apps").parse().expect("--apps N"));
                    i += 2;
                }
                "--machine" => {
                    opts.machine = match value(&args, i, "--machine").as_str() {
                        "haswell" => haswell(),
                        "skylake" => skylake(),
                        other => panic!("unknown machine {other:?} (haswell|skylake)"),
                    };
                    i += 2;
                }
                "--repeats" => {
                    opts.repeats = value(&args, i, "--repeats").parse().expect("--repeats N");
                    i += 2;
                }
                "--min-speedup" => {
                    let v = value(&args, i, "--min-speedup");
                    let (s, t) = v.split_once(':').expect("--min-speedup S:T, e.g. 2.0:4");
                    opts.min_speedup = Some((
                        s.parse().expect("--min-speedup: S must be a float"),
                        t.parse().expect("--min-speedup: T must be a thread count"),
                    ));
                    i += 2;
                }
                "--out" => {
                    opts.out = value(&args, i, "--out");
                    i += 2;
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(!opts.threads.is_empty(), "--threads list must be non-empty");
        assert!(opts.repeats >= 1, "--repeats must be at least 1");
        opts
    }
}

/// Applies the `--min-speedup S:T` perf gate shared by the harnesses: the
/// measured run at `t` workers (from `runs`, a `(workers, speedup_vs_1t)`
/// list) must reach speedup ≥ `s`, guarding against a fan-out silently
/// degenerating to serial — which no output comparison can catch. Exits the
/// process with status 1 on failure. The gate is skipped with a warning when
/// the host has fewer than `t` cores (`available`), where the speedup
/// physically cannot materialize. `tag` prefixes the log lines
/// (e.g. `"bench_loocv_train"`).
pub fn enforce_min_speedup(
    tag: &str,
    min_speedup: Option<(f64, usize)>,
    runs: &[(usize, f64)],
    available: usize,
) {
    let Some((min, at_threads)) = min_speedup else {
        return;
    };
    let &(_, speedup) = runs
        .iter()
        .find(|(threads, _)| *threads == at_threads)
        .unwrap_or_else(|| {
            panic!("--min-speedup references {at_threads} threads, not in --threads list")
        });
    if available < at_threads {
        eprintln!(
            "[{tag}] skipping --min-speedup gate: host has {available} core(s), \
             {at_threads} are needed for the speedup to materialize"
        );
    } else if speedup < min {
        eprintln!(
            "[{tag}] FAIL: speedup at {at_threads} threads is {speedup:.2}x, \
             required >= {min:.2}x — the parallel fan-out may have degenerated to serial"
        );
        std::process::exit(1);
    } else {
        eprintln!(
            "[{tag}] speedup gate passed: {speedup:.2}x >= {min:.2}x at {at_threads} threads"
        );
    }
}

/// Resolves the training settings from the environment (`PNP_FULL=1` for the
/// paper-fidelity configuration) and prints which mode is active.
pub fn settings_from_env() -> TrainSettings {
    let settings = TrainSettings::from_env();
    let mode = if settings.folds >= 30 {
        "FULL"
    } else {
        "quick"
    };
    eprintln!(
        "[pnp-bench] {mode} settings: {} folds, {} epochs, hidden {}, {} RGCN layers",
        settings.folds, settings.epochs, settings.hidden_dim, settings.rgcn_layers
    );
    settings
}

/// Resolves the exhaustive-sweep worker count shared by every experiment
/// binary: a `--sweep-threads N` (or `--sweep-threads=N`) CLI argument wins,
/// then the `PNP_SWEEP_THREADS` environment variable, then auto (one worker
/// per available core). Prints the active setting so experiment logs record
/// how the dataset was built. The dataset itself is bit-identical for every
/// value — the knob only changes wall-clock time.
pub fn sweep_threads_from_env() -> Threads {
    let threads = threads_flag_from(
        std::env::args().skip(1),
        "--sweep-threads",
        Threads::from_env(),
    );
    eprintln!("[pnp-bench] sweep workers: {threads}");
    threads
}

/// Resolves the LOOCV training worker count the same way: a
/// `--train-threads N` (or `--train-threads=N`) CLI argument wins, then the
/// `PNP_TRAIN_THREADS` environment variable, then auto. Training outputs are
/// bit-identical for every value (DESIGN.md §10) — the knob only changes
/// wall-clock time. Binaries assign the result to
/// `TrainSettings::train_threads`.
pub fn train_threads_from_env() -> Threads {
    let threads = threads_flag_from(
        std::env::args().skip(1),
        "--train-threads",
        Threads::from_train_env(),
    );
    eprintln!("[pnp-bench] training workers: {threads}");
    threads
}

/// Shared core of [`sweep_threads_from_env`] / [`train_threads_from_env`]:
/// picks a `Threads` knob named `flag` out of an argument list (both
/// `--flag N` and `--flag=N` forms), falling back to `fallback` when the
/// flag is absent or unparseable (a long experiment should degrade, not
/// abort, on a typo'd knob).
fn threads_flag_from(args: impl Iterator<Item = String>, flag: &str, fallback: Threads) -> Threads {
    let args: Vec<String> = args.collect();
    let inline = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&inline) {
            return Threads::parse(v).unwrap_or(fallback);
        }
        if arg == flag {
            return args
                .get(i + 1)
                .and_then(|v| Threads::parse(v))
                .unwrap_or(fallback);
        }
    }
    fallback
}

/// Prints a standard header naming the figure/table being regenerated.
pub fn banner(artefact: &str, description: &str) {
    println!("==============================================================");
    println!("{artefact}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_quick() {
        std::env::remove_var("PNP_FULL");
        let s = settings_from_env();
        assert!(s.folds < 30);
    }

    #[test]
    fn threads_flag_cli_forms_are_accepted() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        for flag in ["--sweep-threads", "--train-threads"] {
            assert_eq!(
                threads_flag_from(args(&[flag, "4"]).into_iter(), flag, Threads::Auto),
                Threads::Fixed(4)
            );
            assert_eq!(
                threads_flag_from(
                    args(&[&format!("{flag}=2")]).into_iter(),
                    flag,
                    Threads::Auto
                ),
                Threads::Fixed(2)
            );
            assert_eq!(
                threads_flag_from(
                    args(&[&format!("{flag}=auto")]).into_iter(),
                    flag,
                    Threads::Fixed(3)
                ),
                Threads::Auto
            );
            // No flag, or an unparseable value: the fallback wins.
            assert_eq!(
                threads_flag_from(args(&["--other"]).into_iter(), flag, Threads::Fixed(8)),
                Threads::Fixed(8)
            );
            assert_eq!(
                threads_flag_from(args(&[flag, "lots"]).into_iter(), flag, Threads::Auto),
                Threads::Auto
            );
        }
        // The two knobs do not shadow each other.
        assert_eq!(
            threads_flag_from(
                args(&["--sweep-threads", "4"]).into_iter(),
                "--train-threads",
                Threads::Fixed(2)
            ),
            Threads::Fixed(2)
        );
    }

    #[test]
    fn perf_harness_options_parse_and_default() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let defaults = PerfHarnessOptions::parse_from(Vec::new(), "X.json");
        assert_eq!(defaults.threads, vec![1, 2, 4, 8]);
        assert_eq!(defaults.apps, None);
        assert_eq!(defaults.machine.name, "haswell");
        assert_eq!(defaults.repeats, 1);
        assert_eq!(defaults.min_speedup, None);
        assert_eq!(defaults.out, "X.json");

        let opts = PerfHarnessOptions::parse_from(
            args(&[
                "--threads",
                "1,4",
                "--apps",
                "6",
                "--machine",
                "skylake",
                "--repeats",
                "2",
                "--min-speedup",
                "1.3:4",
                "--out",
                "smoke.json",
            ]),
            "X.json",
        );
        assert_eq!(opts.threads, vec![1, 4]);
        assert_eq!(opts.apps, Some(6));
        assert_eq!(opts.machine.name, "skylake");
        assert_eq!(opts.repeats, 2);
        assert_eq!(opts.min_speedup, Some((1.3, 4)));
        assert_eq!(opts.out, "smoke.json");
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn perf_harness_options_reject_unknown_flags() {
        PerfHarnessOptions::parse_from(vec!["--what".into()], "X.json");
    }
}
