//! # pnp-bench
//!
//! Two kinds of artefacts live here:
//!
//! 1. **Experiment binaries** (`src/bin/`): one per table/figure of the
//!    paper. Each builds the required dataset(s), runs the corresponding
//!    driver from `pnp-core::experiments`, prints the rows/series the paper
//!    plots, and writes a JSON copy under `target/experiments/`.
//!    By default they run the *quick* configuration (reduced epochs / folds)
//!    so the whole set finishes on a single-core machine; set `PNP_FULL=1`
//!    for the paper-fidelity settings.
//! 2. **Criterion micro-benchmarks** (`benches/`): component throughput
//!    (graph construction, RGCN forward/backward, execution-model sweeps,
//!    tuner search, the real parallel-for executor).
//!
//! This library crate only hosts small helpers shared by the binaries.

use pnp_core::artifact::ArtifactStore;
use pnp_core::training::TrainSettings;
use pnp_machine::{haswell, skylake, MachineSpec};
use pnp_openmp::Threads;
use pnp_store::Store;
use serde::Serialize;

/// CLI options shared by the perf-tracking harnesses (`bench_dataset_build`,
/// `bench_loocv_train`): which worker counts to measure, how much of the
/// suite to use, and the optional speedup gate.
///
/// ```text
/// [--threads 1,2,4,8] [--apps N] [--machine haswell|skylake]
/// [--repeats N] [--min-speedup S:T] [--out PATH]
/// [--store DIR] [--force-rebuild] [--verify-store]
/// ```
pub struct PerfHarnessOptions {
    /// Worker counts to measure (`--threads`, default `1,2,4,8`). The
    /// 1-worker run is always the determinism anchor and speedup
    /// denominator.
    pub threads: Vec<usize>,
    /// Truncate the application suite to the first `N` apps (`--apps`).
    pub apps: Option<usize>,
    /// Machine model to measure on (`--machine`, default haswell).
    pub machine: MachineSpec,
    /// Best-of-`N` timing repeats (`--repeats`, default 1).
    pub repeats: usize,
    /// `Some((s, t))` (`--min-speedup S:T`): require speedup ≥ `s` at `t`
    /// workers; see [`enforce_min_speedup`].
    pub min_speedup: Option<(f64, usize)>,
    /// Output path of the timing JSON (`--out`).
    pub out: String,
    /// Artifact-store directory (`--store`; `PNP_STORE` is the fallback,
    /// applied by [`PerfHarnessOptions::open_store`]). How a harness uses
    /// the store is harness-specific: a harness never serves the quantity
    /// it *measures* from the cache.
    pub store: Option<String>,
    /// `--force-rebuild`: ignore and overwrite cached artifacts.
    pub force_rebuild: bool,
    /// `--verify-store`: byte-compare cached artifacts against fresh
    /// computations on every hit.
    pub verify_store: bool,
}

impl PerfHarnessOptions {
    /// Parses the process arguments, with the harness-specific default
    /// output path. Panics with a usage message on unknown or malformed
    /// flags — a perf harness should refuse, not guess.
    pub fn parse(default_out: &str) -> Self {
        Self::parse_from(std::env::args().skip(1).collect(), default_out)
    }

    fn parse_from(args: Vec<String>, default_out: &str) -> Self {
        let mut opts = PerfHarnessOptions {
            threads: vec![1, 2, 4, 8],
            apps: None,
            machine: haswell(),
            repeats: 1,
            min_speedup: None,
            out: default_out.to_string(),
            store: None,
            force_rebuild: false,
            verify_store: false,
        };
        let value = |args: &[String], i: usize, flag: &str| -> String {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--threads" => {
                    let v = value(&args, i, "--threads");
                    opts.threads = v
                        .split(',')
                        .map(|s| s.trim().parse().expect("--threads takes e.g. 1,2,4,8"))
                        .collect();
                    i += 2;
                }
                "--apps" => {
                    opts.apps = Some(value(&args, i, "--apps").parse().expect("--apps N"));
                    i += 2;
                }
                "--machine" => {
                    opts.machine = match value(&args, i, "--machine").as_str() {
                        "haswell" => haswell(),
                        "skylake" => skylake(),
                        other => panic!("unknown machine {other:?} (haswell|skylake)"),
                    };
                    i += 2;
                }
                "--repeats" => {
                    opts.repeats = value(&args, i, "--repeats").parse().expect("--repeats N");
                    i += 2;
                }
                "--min-speedup" => {
                    let v = value(&args, i, "--min-speedup");
                    let (s, t) = v.split_once(':').expect("--min-speedup S:T, e.g. 2.0:4");
                    opts.min_speedup = Some((
                        s.parse().expect("--min-speedup: S must be a float"),
                        t.parse().expect("--min-speedup: T must be a thread count"),
                    ));
                    i += 2;
                }
                "--out" => {
                    opts.out = value(&args, i, "--out");
                    i += 2;
                }
                "--store" => {
                    opts.store = Some(value(&args, i, "--store"));
                    i += 2;
                }
                "--force-rebuild" => {
                    opts.force_rebuild = true;
                    i += 1;
                }
                "--verify-store" => {
                    opts.verify_store = true;
                    i += 1;
                }
                other => panic!("unknown argument {other:?}"),
            }
        }
        assert!(!opts.threads.is_empty(), "--threads list must be non-empty");
        assert!(opts.repeats >= 1, "--repeats must be at least 1");
        opts
    }

    /// Opens the artifact store these options name (or the `PNP_STORE`
    /// fallback); `None` when no store is configured.
    pub fn open_store(&self) -> Option<ArtifactStore> {
        open_store(self.store.clone(), self.force_rebuild, self.verify_store)
    }
}

/// Applies the `--min-speedup S:T` perf gate shared by the harnesses: the
/// measured run at `t` workers (from `runs`, a `(workers, speedup_vs_1t)`
/// list) must reach speedup ≥ `s`, guarding against a fan-out silently
/// degenerating to serial — which no output comparison can catch. Exits the
/// process with status 1 on failure. The gate is skipped with a warning when
/// the host has fewer than `t` cores (`available`), where the speedup
/// physically cannot materialize. `tag` prefixes the log lines
/// (e.g. `"bench_loocv_train"`).
pub fn enforce_min_speedup(
    tag: &str,
    min_speedup: Option<(f64, usize)>,
    runs: &[(usize, f64)],
    available: usize,
) {
    let Some((min, at_threads)) = min_speedup else {
        return;
    };
    let &(_, speedup) = runs
        .iter()
        .find(|(threads, _)| *threads == at_threads)
        .unwrap_or_else(|| {
            panic!("--min-speedup references {at_threads} threads, not in --threads list")
        });
    if available < at_threads {
        eprintln!(
            "[{tag}] skipping --min-speedup gate: host has {available} core(s), \
             {at_threads} are needed for the speedup to materialize"
        );
    } else if speedup < min {
        eprintln!(
            "[{tag}] FAIL: speedup at {at_threads} threads is {speedup:.2}x, \
             required >= {min:.2}x — the parallel fan-out may have degenerated to serial"
        );
        std::process::exit(1);
    } else {
        eprintln!(
            "[{tag}] speedup gate passed: {speedup:.2}x >= {min:.2}x at {at_threads} threads"
        );
    }
}

/// Resolves the training settings from the environment (`PNP_FULL=1` for the
/// paper-fidelity configuration) and prints which mode is active.
pub fn settings_from_env() -> TrainSettings {
    let settings = TrainSettings::from_env();
    let mode = if settings.folds >= 30 {
        "FULL"
    } else {
        "quick"
    };
    eprintln!(
        "[pnp-bench] {mode} settings: {} folds, {} epochs, hidden {}, {} RGCN layers",
        settings.folds, settings.epochs, settings.hidden_dim, settings.rgcn_layers
    );
    settings
}

/// Resolves the exhaustive-sweep worker count shared by every experiment
/// binary: a `--sweep-threads N` (or `--sweep-threads=N`) CLI argument wins,
/// then the `PNP_SWEEP_THREADS` environment variable, then auto (one worker
/// per available core). Prints the active setting so experiment logs record
/// how the dataset was built. The dataset itself is bit-identical for every
/// value — the knob only changes wall-clock time.
pub fn sweep_threads_from_env() -> Threads {
    let threads = threads_flag_from(
        std::env::args().skip(1),
        "--sweep-threads",
        Threads::from_env(),
    );
    eprintln!("[pnp-bench] sweep workers: {threads}");
    threads
}

/// Resolves the LOOCV training worker count the same way: a
/// `--train-threads N` (or `--train-threads=N`) CLI argument wins, then the
/// `PNP_TRAIN_THREADS` environment variable, then auto. Training outputs are
/// bit-identical for every value (DESIGN.md §10) — the knob only changes
/// wall-clock time. Binaries assign the result to
/// `TrainSettings::train_threads`.
pub fn train_threads_from_env() -> Threads {
    let threads = threads_flag_from(
        std::env::args().skip(1),
        "--train-threads",
        Threads::from_train_env(),
    );
    eprintln!("[pnp-bench] training workers: {threads}");
    threads
}

/// Shared core of [`sweep_threads_from_env`] / [`train_threads_from_env`]:
/// picks a `Threads` knob named `flag` out of an argument list (both
/// `--flag N` and `--flag=N` forms), falling back to `fallback` when the
/// flag is absent or unparseable (a long experiment should degrade, not
/// abort, on a typo'd knob).
fn threads_flag_from(args: impl Iterator<Item = String>, flag: &str, fallback: Threads) -> Threads {
    let args: Vec<String> = args.collect();
    let inline = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&inline) {
            return Threads::parse(v).unwrap_or(fallback);
        }
        if arg == flag {
            return args
                .get(i + 1)
                .and_then(|v| Threads::parse(v))
                .unwrap_or(fallback);
        }
    }
    fallback
}

/// Scans an argument list for a `--flag V` / `--flag=V` string value.
/// Public because the `pnp-serve` binaries reuse the experiment CLI idiom.
pub fn string_flag_from(args: &[String], flag: &str) -> Option<String> {
    let inline = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(v) = arg.strip_prefix(&inline) {
            return Some(v.to_string());
        }
        if arg == flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// True when a boolean `--flag` is present in the argument list.
/// Public because the `pnp-serve` binaries reuse the experiment CLI idiom.
pub fn bool_flag_from(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The `q`-th percentile (0–100) of a sample set by nearest-rank on a sorted
/// copy — the definition the serve-path latency report (`BENCH_serve.json`
/// p50/p99) uses. NaNs are rejected by assertion (a NaN latency means the
/// harness itself is broken); an empty sample set returns 0.0 so a
/// zero-request smoke run still renders a report.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile q={q} out of range");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    assert!(
        !sorted.iter().any(|s| s.is_nan()),
        "NaN latency sample: the harness clock is broken"
    );
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Resolves the content-addressed artifact store shared by every experiment
/// binary (DESIGN.md §12): `--store DIR` wins, then the `PNP_STORE`
/// environment variable; unset means no store (every pipeline recomputes).
/// `--force-rebuild` / `PNP_STORE_FORCE=1` ignores and overwrites cached
/// artifacts; `--verify-store` / `PNP_STORE_VERIFY=1` recomputes on every
/// hit and byte-compares against the cached payload. Prints the active
/// configuration so experiment logs record where artifacts came from.
pub fn store_from_env() -> Option<ArtifactStore> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    store_from(&args)
}

fn store_from(args: &[String]) -> Option<ArtifactStore> {
    open_store(
        string_flag_from(args, "--store"),
        bool_flag_from(args, "--force-rebuild"),
        bool_flag_from(args, "--verify-store"),
    )
}

/// Shared store opener: an explicit `--store` directory wins, then
/// `PNP_STORE`; the CLI mode flags are OR-ed on top of the environment
/// modes, whose semantics live in one place — [`Store::with_env_modes`] /
/// [`Store::from_env`] — so the CLI and library paths cannot drift.
fn open_store(dir: Option<String>, force_flag: bool, verify_flag: bool) -> Option<ArtifactStore> {
    let base = match dir {
        Some(d) => Store::open(d).with_env_modes(),
        None => Store::from_env()?,
    };
    let force = base.force_rebuild() || force_flag;
    let verify = base.verify() || verify_flag;
    let store = base.with_force_rebuild(force).with_verify(verify);
    eprintln!(
        "[pnp-bench] artifact store: {} (force_rebuild={force}, verify={verify})",
        store.root().display()
    );
    Some(ArtifactStore::new(store))
}

/// Prints a store's end-of-run hit/miss tally. Returns `true` when verify
/// mode found cached bytes differing from fresh computations — a broken
/// cache-key contract the calling binary should turn into a non-zero exit.
pub fn report_store_stats(tag: &str, store: &ArtifactStore) -> bool {
    let s = store.stats();
    eprintln!(
        "[{tag}] store: {} hit(s), {} miss(es), {} write(s), {} corrupt, \
         {} verified, {} verify mismatch(es)",
        s.hits, s.misses, s.writes, s.corrupt, s.verified, s.verify_mismatches
    );
    s.verify_mismatches > 0
}

/// Measurement provenance stamped into the perf-trajectory JSONs
/// (`BENCH_dataset_build.json` / `BENCH_loocv_train.json`), mirroring the
/// context header of `VALIDATION.json`: which commit produced the numbers,
/// under which store-key schema, on how many cores — so trajectory points
/// are attributable long after the run.
#[derive(Clone, Debug, Serialize)]
pub struct Provenance {
    /// `git rev-parse HEAD` of the measured tree (falls back to the
    /// `GITHUB_SHA` environment variable, then `"unknown"`).
    pub git_sha: String,
    /// [`pnp_store::SCHEMA_VERSION`] the binary was built with.
    pub store_schema_version: u32,
    /// `std::thread::available_parallelism` of the measuring host — without
    /// spare cores the speedups cannot materialize (the ROADMAP's 1-core
    /// container caveat travels with the data).
    pub available_parallelism: usize,
}

impl Provenance {
    /// Captures the current process's provenance.
    pub fn capture() -> Self {
        Provenance {
            git_sha: git_sha(),
            store_schema_version: pnp_store::SCHEMA_VERSION,
            available_parallelism: std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// The commit the working tree is at: `git rev-parse HEAD` (suffixed with
/// `-dirty` when the tree has uncommitted changes — numbers measured on a
/// dirty tree are not reproducible from the stamped commit), then the
/// `GITHUB_SHA` environment variable (detached CI checkouts), then
/// `"unknown"` — a perf harness must not fail because git is absent.
pub fn git_sha() -> String {
    let git = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|out| out.status.success())
            .and_then(|out| String::from_utf8(out.stdout).ok())
    };
    git(&["rev-parse", "HEAD"])
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .map(|sha| {
            let dirty =
                git(&["status", "--porcelain"]).is_some_and(|status| !status.trim().is_empty());
            if dirty {
                format!("{sha}-dirty")
            } else {
                sha
            }
        })
        .or_else(|| std::env::var("GITHUB_SHA").ok())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Prints a standard header naming the figure/table being regenerated.
pub fn banner(artefact: &str, description: &str) {
    println!("==============================================================");
    println!("{artefact}: {description}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_settings_are_quick() {
        std::env::remove_var("PNP_FULL");
        let s = settings_from_env();
        assert!(s.folds < 30);
    }

    #[test]
    fn threads_flag_cli_forms_are_accepted() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        for flag in ["--sweep-threads", "--train-threads"] {
            assert_eq!(
                threads_flag_from(args(&[flag, "4"]).into_iter(), flag, Threads::Auto),
                Threads::Fixed(4)
            );
            assert_eq!(
                threads_flag_from(
                    args(&[&format!("{flag}=2")]).into_iter(),
                    flag,
                    Threads::Auto
                ),
                Threads::Fixed(2)
            );
            assert_eq!(
                threads_flag_from(
                    args(&[&format!("{flag}=auto")]).into_iter(),
                    flag,
                    Threads::Fixed(3)
                ),
                Threads::Auto
            );
            // No flag, or an unparseable value: the fallback wins.
            assert_eq!(
                threads_flag_from(args(&["--other"]).into_iter(), flag, Threads::Fixed(8)),
                Threads::Fixed(8)
            );
            assert_eq!(
                threads_flag_from(args(&[flag, "lots"]).into_iter(), flag, Threads::Auto),
                Threads::Auto
            );
        }
        // The two knobs do not shadow each other.
        assert_eq!(
            threads_flag_from(
                args(&["--sweep-threads", "4"]).into_iter(),
                "--train-threads",
                Threads::Fixed(2)
            ),
            Threads::Fixed(2)
        );
    }

    #[test]
    fn perf_harness_options_parse_and_default() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let defaults = PerfHarnessOptions::parse_from(Vec::new(), "X.json");
        assert_eq!(defaults.threads, vec![1, 2, 4, 8]);
        assert_eq!(defaults.apps, None);
        assert_eq!(defaults.machine.name, "haswell");
        assert_eq!(defaults.repeats, 1);
        assert_eq!(defaults.min_speedup, None);
        assert_eq!(defaults.out, "X.json");

        let opts = PerfHarnessOptions::parse_from(
            args(&[
                "--threads",
                "1,4",
                "--apps",
                "6",
                "--machine",
                "skylake",
                "--repeats",
                "2",
                "--min-speedup",
                "1.3:4",
                "--out",
                "smoke.json",
            ]),
            "X.json",
        );
        assert_eq!(opts.threads, vec![1, 4]);
        assert_eq!(opts.apps, Some(6));
        assert_eq!(opts.machine.name, "skylake");
        assert_eq!(opts.repeats, 2);
        assert_eq!(opts.min_speedup, Some((1.3, 4)));
        assert_eq!(opts.out, "smoke.json");
        assert_eq!(opts.store, None);
        assert!(!opts.force_rebuild && !opts.verify_store);

        let opts = PerfHarnessOptions::parse_from(
            args(&["--store", "pnp-store", "--force-rebuild", "--verify-store"]),
            "X.json",
        );
        assert_eq!(opts.store.as_deref(), Some("pnp-store"));
        assert!(opts.force_rebuild && opts.verify_store);
    }

    #[test]
    fn store_flags_are_scanned_from_arbitrary_argument_lists() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            string_flag_from(&args(&["--apps", "6", "--store", "dir"]), "--store").as_deref(),
            Some("dir")
        );
        assert_eq!(
            string_flag_from(&args(&["--store=dir"]), "--store").as_deref(),
            Some("dir")
        );
        assert_eq!(string_flag_from(&args(&["--apps", "6"]), "--store"), None);
        assert!(bool_flag_from(&args(&["--verify-store"]), "--verify-store"));
        assert!(!bool_flag_from(&args(&[]), "--verify-store"));
        // An explicit directory opens a store without consulting PNP_STORE.
        let store = open_store(Some("/tmp/pnp-bench-flag-test".into()), true, false)
            .expect("explicit dir opens");
        assert!(store.store().force_rebuild());
        assert!(!store.store().verify());
    }

    #[test]
    fn percentile_follows_nearest_rank() {
        let samples = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&samples, 0.0), 1.0);
        assert_eq!(percentile(&samples, 50.0), 3.0);
        assert_eq!(percentile(&samples, 99.0), 5.0);
        assert_eq!(percentile(&samples, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }

    #[test]
    fn percentile_is_bitwise_pinned_on_ties_and_signed_zero() {
        // `total_cmp` orders -0.0 below 0.0, so the nearest-rank picks are
        // pinned bit for bit even across sign-of-zero ties.
        let samples = [0.0, -0.0, 0.0, -0.0];
        assert_eq!(percentile(&samples, 50.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(percentile(&samples, 100.0).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    #[should_panic(expected = "NaN latency sample")]
    fn percentile_rejects_nan_samples() {
        percentile(&[1.0, f64::NAN], 50.0);
    }

    #[test]
    fn provenance_capture_is_well_formed() {
        let p = Provenance::capture();
        assert!(!p.git_sha.is_empty());
        assert_eq!(p.store_schema_version, pnp_store::SCHEMA_VERSION);
        assert!(p.available_parallelism >= 1);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn perf_harness_options_reject_unknown_flags() {
        PerfHarnessOptions::parse_from(vec!["--what".into()], "X.json");
    }
}
