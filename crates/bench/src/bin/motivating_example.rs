//! Regenerates the Section I motivating example: exhaustive exploration of
//! the LULESH boundary-condition region on Haswell.

use pnp_bench::{banner, report_store_stats, store_from_env, sweep_threads_from_env};
use pnp_core::experiments::motivating;
use pnp_core::report::write_json;

fn main() {
    banner(
        "Motivating example (Section I)",
        "LULESH ApplyAccelerationBoundaryConditionsForNodes on Haswell",
    );
    let store = store_from_env();
    let results = motivating::run_with_store(sweep_threads_from_env(), store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("motivating_example", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("motivating_example", store) {
            std::process::exit(1);
        }
    }
}
