//! Regenerates the Section I motivating example: exhaustive exploration of
//! the LULESH boundary-condition region on Haswell.

use pnp_bench::{banner, sweep_threads_from_env};
use pnp_core::experiments::motivating;
use pnp_core::report::write_json;

fn main() {
    banner(
        "Motivating example (Section I)",
        "LULESH ApplyAccelerationBoundaryConditionsForNodes on Haswell",
    );
    let results = motivating::run_with(sweep_threads_from_env());
    println!("{}", results.render());
    if let Ok(path) = write_json("motivating_example", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
}
