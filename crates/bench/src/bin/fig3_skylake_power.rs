//! Regenerates Figure 3: power-constrained tuning on the Skylake testbed
//! (normalized speedups per application at 75/100/120/150 W).

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::power_constrained;
use pnp_core::report::write_json;
use pnp_machine::skylake;

fn main() {
    banner(
        "Figure 3",
        "power-constrained tuning, Skylake (normalized by oracle)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results =
        power_constrained::run_with_store(&skylake(), &settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("fig3_skylake_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("fig3", store) {
            std::process::exit(1);
        }
    }
}
