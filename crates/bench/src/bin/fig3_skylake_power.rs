//! Regenerates Figure 3: power-constrained tuning on the Skylake testbed
//! (normalized speedups per application at 75/100/120/150 W).

use pnp_bench::{banner, settings_from_env, sweep_threads_from_env, train_threads_from_env};
use pnp_core::experiments::power_constrained;
use pnp_core::report::write_json;
use pnp_machine::skylake;

fn main() {
    banner(
        "Figure 3",
        "power-constrained tuning, Skylake (normalized by oracle)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let results = power_constrained::run_with(&skylake(), &settings, sweep_threads);
    println!("{}", results.render());
    if let Ok(path) = write_json("fig3_skylake_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
}
