//! Perf-tracking harness for batched block-diagonal inference.
//!
//! Builds one dataset, replicates its region graphs into a fixed inference
//! batch, and measures a committee forward pass two ways at each matmul
//! worker count: the *single* path (one [`PnPModel::predict_proba`] call per
//! graph per model) and the *fused* path (one [`GraphBatch`] through
//! [`PnPModel::predict_proba_batch`], DESIGN.md §15). Every measured run's
//! probabilities are compared bit-for-bit against the 1-thread single-graph
//! baseline, and the timings become the committed `BENCH_inference.json`
//! perf trajectory — the inference-side sibling of `BENCH_dataset_build`,
//! `BENCH_loocv_train`, and `BENCH_serve`.
//!
//! ```text
//! bench_inference [--threads 1,2,4,8] [--apps N] [--machine haswell|skylake]
//!                 [--repeats N] [--min-speedup S:T] [--out PATH] [--store DIR]
//! ```
//!
//! Exits non-zero when any run's probabilities differ from the baseline, so
//! CI can use it directly as the inference determinism gate. `--min-speedup
//! S:T` gates the *fused* path's thread scaling: the batch concatenates
//! enough nodes to clear [`pnp_tensor::PAR_MIN_ROWS`], so row-parallel
//! matmul must actually pay off at `T` workers (skipped with a warning on
//! hosts with fewer than `T` cores). The committee uses freshly seeded
//! weights — inference cost does not depend on what the weights are, and
//! skipping training keeps the harness fast enough for per-commit CI.

use pnp_bench::{banner, enforce_min_speedup, PerfHarnessOptions, Provenance};
use pnp_benchmarks::full_suite;
use pnp_gnn::{GraphBatch, ModelConfig, PnPModel};
use pnp_graph::{EncodedGraph, Vocabulary};
use pnp_openmp::Threads;
use pnp_tensor::set_matmul_threads;
use serde::Serialize;
use std::time::Instant;

/// Committee size: matches the per-fold model count a `TuneService`
/// committee carries for the tiny CI fixtures.
const COMMITTEE: usize = 3;
/// The batch replicates the region list until it carries at least this many
/// graphs — large enough that fusion has something to win on.
const MIN_BATCH_GRAPHS: usize = 64;

/// One measured inference pass (single and fused) at a fixed matmul worker
/// count.
#[derive(Clone, Debug, Serialize)]
struct Run {
    /// Matmul worker count (`set_matmul_threads`).
    threads: usize,
    /// Best-of-`repeats` wall time of the single-graph path in seconds.
    single_wall_s: f64,
    /// Best-of-`repeats` wall time of the fused batched path in seconds
    /// (including `GraphBatch` assembly — it is part of the fused path).
    batched_wall_s: f64,
    /// `single_wall_s / batched_wall_s` at this worker count — the fusion
    /// win itself.
    fused_speedup: f64,
    /// `batched_wall_s(1 thread) / batched_wall_s(this)` — the fused path's
    /// thread scaling, which `--min-speedup` gates.
    speedup_vs_1t: f64,
    /// Whether both paths' probabilities equal the 1-thread single-graph
    /// baseline to the bit.
    identical_to_baseline: bool,
}

/// The `BENCH_inference.json` schema.
#[derive(Clone, Debug, Serialize)]
struct Report {
    /// Benchmark identifier (always `"inference"`).
    bench: String,
    /// Machine whose dataset supplied the region graphs.
    machine: String,
    /// Number of applications in the dataset.
    applications: usize,
    /// Number of distinct OpenMP region graphs.
    regions: usize,
    /// Graphs in the replicated inference batch.
    batch_graphs: usize,
    /// Total nodes across the batch (must clear `PAR_MIN_ROWS` for the
    /// thread sweep to mean anything).
    batch_nodes: usize,
    /// Models in the committee.
    committee: usize,
    /// Hidden dimension of the committee models.
    hidden_dim: usize,
    /// RGCN layers per model.
    rgcn_layers: usize,
    /// Measurement provenance: git SHA, store-key schema version, and
    /// `available_parallelism` of the measuring host.
    context: Provenance,
    /// Best-of-`repeats` timing per matmul worker count.
    runs: Vec<Run>,
}

fn committee(num_classes: usize) -> Vec<PnPModel> {
    (0..COMMITTEE)
        .map(|i| {
            PnPModel::new(ModelConfig {
                vocab_size: Vocabulary::standard().len(),
                hidden_dim: 32,
                num_rgcn_layers: 2,
                fc_hidden: 64,
                num_classes,
                num_relations: pnp_graph::EdgeFlow::COUNT,
                num_dynamic_features: 0,
                dropout: 0.0,
                seed: 0xBA7C4 + i as u64,
            })
        })
        .collect()
}

/// The single path: one forward per graph per model, graphs outermost so
/// the committee accumulation order matches `committee_predict`.
fn predict_single(models: &mut [PnPModel], graphs: &[&EncodedGraph]) -> Vec<Vec<f32>> {
    let mut out = Vec::with_capacity(graphs.len() * models.len());
    for graph in graphs {
        for model in models.iter_mut() {
            out.push(model.predict_proba(graph, None));
        }
    }
    out
}

/// The fused path: one block-diagonal batch through every model.
fn predict_batched(models: &mut [PnPModel], graphs: &[&EncodedGraph]) -> Vec<Vec<f32>> {
    let batch = GraphBatch::from_graphs(graphs).expect("dataset graphs batch cleanly");
    let per_model: Vec<Vec<Vec<f32>>> = models
        .iter_mut()
        .map(|m| m.predict_proba_batch(&batch, None))
        .collect();
    let mut out = Vec::with_capacity(graphs.len() * models.len());
    for g in 0..graphs.len() {
        for rows in &per_model {
            out.push(rows[g].clone());
        }
    }
    out
}

fn bits(probs: &[Vec<f32>]) -> Vec<Vec<u32>> {
    probs
        .iter()
        .map(|row| row.iter().map(|p| p.to_bits()).collect())
        .collect()
}

fn main() {
    banner(
        "inference timing",
        "single vs fused block-diagonal committee inference per matmul worker count",
    );
    let opts = PerfHarnessOptions::parse("BENCH_inference.json");
    let mut apps = full_suite();
    if let Some(n) = opts.apps {
        apps.truncate(n);
    }
    let context = Provenance::capture();
    let available = context.available_parallelism;

    // The dataset build is not what this harness measures; serve it from the
    // warm store when one is configured (the CI inference-perf job reuses
    // the warm-store artifact exactly here).
    let machine = opts.machine.clone();
    let store = opts.open_store();
    let vocab = Vocabulary::standard();
    let ds = match &store {
        Some(store) => store.load_or_build_dataset(&machine, &apps, &vocab, Threads::Auto),
        None => {
            pnp_core::dataset::Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Auto)
        }
    };
    assert!(!ds.is_empty(), "dataset has no regions to infer on");

    let mut graphs: Vec<&EncodedGraph> = Vec::new();
    while graphs.len() < MIN_BATCH_GRAPHS {
        graphs.extend(ds.regions.iter().map(|r| &r.graph));
    }
    let batch_nodes: usize = graphs.iter().map(|g| g.num_nodes()).sum();
    let num_classes = ds.space.num_tuned_points();
    let mut models = committee(num_classes);
    eprintln!(
        "[bench_inference] batch: {} graph(s), {} node(s), committee of {} ({} classes)",
        graphs.len(),
        batch_nodes,
        models.len(),
        num_classes
    );
    assert!(
        batch_nodes >= pnp_tensor::PAR_MIN_ROWS,
        "batch too small for the thread sweep to engage row-parallel matmul"
    );

    // The 1-thread single-graph pass is the bit-identity anchor; a 1-thread
    // fused pass (measured whether or not 1 is in --threads) is the
    // thread-scaling denominator.
    set_matmul_threads(1);
    let baseline = bits(&predict_single(&mut models, &graphs));
    let mut batched_1t = f64::INFINITY;
    for _ in 0..opts.repeats {
        let start = Instant::now();
        let _ = predict_batched(&mut models, &graphs);
        batched_1t = batched_1t.min(start.elapsed().as_secs_f64());
    }

    let mut runs = Vec::new();
    let mut all_identical = true;
    for &threads in &opts.threads {
        set_matmul_threads(threads);
        let mut single_best = f64::INFINITY;
        let mut batched_best = f64::INFINITY;
        let mut identical = true;
        for _ in 0..opts.repeats {
            let start = Instant::now();
            let single = predict_single(&mut models, &graphs);
            single_best = single_best.min(start.elapsed().as_secs_f64());
            let start = Instant::now();
            let batched = predict_batched(&mut models, &graphs);
            batched_best = batched_best.min(start.elapsed().as_secs_f64());
            identical &= bits(&single) == baseline && bits(&batched) == baseline;
        }
        if threads == 1 {
            batched_1t = batched_1t.min(batched_best);
        }
        all_identical &= identical;
        eprintln!(
            "[bench_inference] {threads:>2} thread(s): single {single_best:.3} s, \
             fused {batched_best:.3} s ({:.2}x)  identical={identical}",
            single_best / batched_best
        );
        runs.push(Run {
            threads,
            single_wall_s: single_best,
            batched_wall_s: batched_best,
            fused_speedup: single_best / batched_best,
            speedup_vs_1t: batched_1t / batched_best,
            identical_to_baseline: identical,
        });
    }
    set_matmul_threads(1);

    let report = Report {
        bench: "inference".into(),
        machine: machine.name.clone(),
        applications: apps.len(),
        regions: ds.len(),
        batch_graphs: graphs.len(),
        batch_nodes,
        committee: models.len(),
        hidden_dim: 32,
        rgcn_layers: 2,
        context,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write timing JSON");
    println!("{json}");
    eprintln!("[bench_inference] wrote {}", opts.out);

    if !all_identical {
        eprintln!(
            "[bench_inference] FAIL: some run differs from the 1-thread single-graph baseline \
             — the bit-identity contract (DESIGN.md §15) is broken"
        );
        std::process::exit(1);
    }

    let speedups: Vec<(usize, f64)> = report
        .runs
        .iter()
        .map(|r| (r.threads, r.speedup_vs_1t))
        .collect();
    enforce_min_speedup("bench_inference", opts.min_speedup, &speedups, available);
}
