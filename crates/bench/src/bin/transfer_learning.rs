//! Regenerates the transfer-learning result of Section IV-B: reusing the
//! Haswell-trained GNN layers on Skylake and retraining only the dense
//! classifier (paper: ≈ 4.18× faster training / 76 % less training time).

use pnp_bench::{banner, settings_from_env, sweep_threads_from_env, train_threads_from_env};
use pnp_core::experiments::transfer;
use pnp_core::report::write_json;

fn main() {
    banner(
        "Transfer learning (Section IV-B)",
        "Haswell GNN reused on Skylake",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let results = transfer::run_with(&settings, sweep_threads);
    println!("{}", results.render());
    if let Ok(path) = write_json("transfer_learning", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
}
