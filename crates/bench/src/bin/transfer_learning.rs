//! Regenerates the transfer-learning result of Section IV-B: reusing the
//! Haswell-trained GNN layers on Skylake and retraining only the dense
//! classifier (paper: ≈ 4.18× faster training / 76 % less training time).

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::transfer;
use pnp_core::report::write_json;

fn main() {
    banner(
        "Transfer learning (Section IV-B)",
        "Haswell GNN reused on Skylake",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results = transfer::run_with_store(&settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("transfer_learning", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("transfer_learning", store) {
            std::process::exit(1);
        }
    }
}
