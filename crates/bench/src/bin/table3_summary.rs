//! Regenerates the §IV-B headline numbers ("Table 3" in EXPERIMENTS.md):
//! per-power geometric-mean speedups and oracle-proximity statistics for both
//! machines, reusing the JSON written by the Figure 2/3 binaries when present.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::power_constrained::{self, PowerConstrainedResults};
use pnp_core::report::TextTable;
use pnp_machine::{haswell, skylake};
use std::path::Path;

fn load_cached(name: &str) -> Option<PowerConstrainedResults> {
    let path = Path::new("target")
        .join("experiments")
        .join(format!("{name}.json"));
    serde_json::from_str(&std::fs::read_to_string(path).ok()?).ok()
}

fn main() {
    banner(
        "Section IV-B summary",
        "geomean speedups per power cap and oracle proximity",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let runs = [
        ("fig2_haswell_power", haswell()),
        ("fig3_skylake_power", skylake()),
    ];
    for (cache, machine) in runs {
        let results = load_cached(cache).unwrap_or_else(|| {
            eprintln!(
                "[pnp-bench] no cached {cache}, re-running (use fig2/fig3 binaries to cache)"
            );
            power_constrained::run_with_store(&machine, &settings, sweep_threads, store.as_ref())
        });
        println!("\n--- {} ---", results.machine);
        let mut t = TextTable::new(&[
            "power W",
            "oracle",
            "pnp_static",
            "pnp_dynamic",
            "bliss",
            "opentuner",
        ]);
        for ((power, tuners), (_, oracle)) in results
            .summary
            .geomean_speedup_per_power
            .iter()
            .zip(&results.summary.oracle_geomean_per_power)
        {
            let mut vals = vec![*oracle];
            vals.extend_from_slice(tuners);
            t.row_numeric(&format!("{power:.0}"), &vals);
        }
        println!("{}", t.render());
        println!(
            ">=0.95x oracle: pnp_static {:.1}%, pnp_dynamic {:.1}%, bliss {:.1}%, opentuner {:.1}%",
            100.0 * results.summary.pnp_static_within_95,
            100.0 * results.summary.pnp_dynamic_within_95,
            100.0 * results.summary.bliss_within_95,
            100.0 * results.summary.opentuner_within_95
        );
        println!(
            "PnP static matches/beats BLISS in {:.1}% and OpenTuner in {:.1}% of cases",
            100.0 * results.summary.pnp_beats_bliss,
            100.0 * results.summary.pnp_beats_opentuner
        );
    }
    if let Some(store) = &store {
        if report_store_stats("table3", store) {
            std::process::exit(1);
        }
    }
}
