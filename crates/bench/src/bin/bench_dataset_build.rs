//! Perf-tracking harness for the exhaustive dataset sweep.
//!
//! Builds the dataset at a list of worker counts, measures wall time, checks
//! that every build is bit-identical to the 1-thread baseline (serialized
//! with `serde_json` and compared as strings), and writes the timings as
//! machine-readable JSON — the perf trajectory CI uploads per run and the
//! repository seeds in `BENCH_dataset_build.json`.
//!
//! ```text
//! bench_dataset_build [--threads 1,2,4,8] [--apps N] [--machine haswell|skylake]
//!                     [--repeats N] [--min-speedup S:T] [--out PATH]
//! ```
//!
//! Exits non-zero when any build differs from the baseline, so CI can use it
//! directly as the sweep-smoke determinism gate. `--min-speedup S:T` adds a
//! perf gate: the run at `T` threads must reach speedup ≥ `S` over the
//! serial build — guarding against the fan-out silently degenerating to a
//! serial sweep (which no byte comparison can catch). The gate is skipped
//! with a warning when the host has fewer than `T` cores, where the speedup
//! physically cannot materialize.

use pnp_bench::{banner, enforce_min_speedup, report_store_stats, PerfHarnessOptions, Provenance};
use pnp_benchmarks::full_suite;
use pnp_core::artifact::ArtifactStore;
use pnp_core::dataset::Dataset;
use pnp_graph::Vocabulary;
use pnp_openmp::Threads;
use serde::Serialize;
use std::time::Instant;

/// One measured build.
#[derive(Clone, Debug, Serialize)]
struct Run {
    /// Worker count the dataset was built with.
    threads: usize,
    /// Best-of-`repeats` wall time in seconds.
    wall_s: f64,
    /// `wall_s(1 thread) / wall_s(this)` — the headline speedup.
    speedup_vs_1t: f64,
    /// Whether the serialized dataset is byte-equal to the 1-thread build.
    identical_to_1t: bool,
}

/// The `BENCH_dataset_build.json` schema.
#[derive(Clone, Debug, Serialize)]
struct Report {
    /// Benchmark identifier (always `"dataset_build"`).
    bench: String,
    /// Machine whose search space was swept.
    machine: String,
    /// Number of applications in the swept suite.
    applications: usize,
    /// Number of OpenMP regions (= parallel jobs).
    regions: usize,
    /// Simulations per region: `(configs + default) × power levels`.
    simulations_per_region: usize,
    /// Measurement provenance: git SHA, store-key schema version, and
    /// `available_parallelism` of the measuring host (without spare cores
    /// the speedups cannot materialize) — the same attribution contract as
    /// `VALIDATION.json`'s context header.
    context: Provenance,
    /// Best-of-`repeats` timing per worker count.
    runs: Vec<Run>,
}

fn main() {
    banner(
        "dataset_build timing",
        "exhaustive sweep wall time per worker count + determinism check",
    );
    let opts = PerfHarnessOptions::parse("BENCH_dataset_build.json");
    let mut apps = full_suite();
    if let Some(n) = opts.apps {
        apps.truncate(n);
    }
    let vocab = Vocabulary::standard();
    let context = Provenance::capture();
    let available = context.available_parallelism;

    // The 1-thread build is always the determinism anchor and the speedup
    // denominator, measured best-of-`repeats` like every other entry. The
    // serial build is the most expensive one in the run, so it is timed
    // exactly once here and reused for both the "1" list entry (when
    // present) and the comparison baseline.
    let mut wall_1t = f64::INFINITY;
    let mut baseline_json = String::new();
    let mut regions = 0;
    let mut simulations_per_region = 0;
    for r in 0..opts.repeats {
        let start = Instant::now();
        let ds = Dataset::build_with_threads(&opts.machine, &apps, &vocab, Threads::Fixed(1));
        wall_1t = wall_1t.min(start.elapsed().as_secs_f64());
        if r == 0 {
            regions = ds.len();
            simulations_per_region =
                (ds.space.configs_per_power() + 1) * ds.space.power_levels.len();
            baseline_json = serde_json::to_string(&ds).expect("dataset serializes");
        }
    }

    let mut runs = Vec::new();
    let mut all_identical = true;
    for &threads in &opts.threads {
        let (best, identical) = if threads == 1 {
            (wall_1t, true)
        } else {
            let mut best = f64::INFINITY;
            let mut identical = true;
            for _ in 0..opts.repeats {
                let start = Instant::now();
                let ds = Dataset::build_with_threads(
                    &opts.machine,
                    &apps,
                    &vocab,
                    Threads::Fixed(threads),
                );
                best = best.min(start.elapsed().as_secs_f64());
                identical &=
                    serde_json::to_string(&ds).expect("dataset serializes") == baseline_json;
            }
            (best, identical)
        };
        all_identical &= identical;
        eprintln!("[bench_dataset_build] {threads:>2} threads: {best:.3} s  identical={identical}");
        runs.push(Run {
            threads,
            wall_s: best,
            speedup_vs_1t: wall_1t / best,
            identical_to_1t: identical,
        });
    }
    let report = Report {
        bench: "dataset_build".into(),
        machine: opts.machine.name.clone(),
        applications: apps.len(),
        regions,
        simulations_per_region,
        context,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write timing JSON");
    println!("{json}");
    eprintln!("[bench_dataset_build] wrote {}", opts.out);

    // This harness *measures* cold builds, so it never reads the store —
    // but the serial baseline it just built is byte-identical to what any
    // warm consumer would compute, so warm the store with it on the way out.
    if let Some(store) = opts.open_store() {
        let key = ArtifactStore::dataset_key(&opts.machine, &apps, &vocab);
        match store.store().save_bytes(&key, baseline_json.as_bytes()) {
            Ok(path) => eprintln!(
                "[bench_dataset_build] warmed store with the measured dataset: {}",
                path.display()
            ),
            Err(e) => eprintln!("[bench_dataset_build] could not warm store: {e}"),
        }
        // This harness only ever writes, so verify mismatches cannot occur
        // today — but keep the gate wired like every other binary so a
        // future read path cannot silently drop it.
        if report_store_stats("bench_dataset_build", &store) {
            std::process::exit(1);
        }
    }

    if !all_identical {
        eprintln!("[bench_dataset_build] FAIL: some build differs from the 1-thread baseline");
        std::process::exit(1);
    }

    let speedups: Vec<(usize, f64)> = report
        .runs
        .iter()
        .map(|r| (r.threads, r.speedup_vs_1t))
        .collect();
    enforce_min_speedup(
        "bench_dataset_build",
        opts.min_speedup,
        &speedups,
        available,
    );
}
