//! Paper-fidelity validation harness: drives every figure/table experiment
//! through the shared `run_on_dataset` entry points, evaluates the
//! machine-checkable invariants of `pnp_core::validate` (DESIGN.md §11), and
//! writes the verdicts as `VALIDATION.json`.
//!
//! ```text
//! validate_paper [--apps N] [--out PATH] [--sweep-threads N] [--train-threads N]
//!                [--store DIR] [--force-rebuild] [--verify-store]
//!                [--ood-seed S] [--ood-kernels N]
//! ```
//!
//! Exits non-zero when any invariant fails that is not a documented
//! `expected_fail` (DESIGN.md §11) — CI runs `--apps 6` as the fidelity
//! gate; the full 30-application suite is the default locally. The report
//! header stamps `available_parallelism` so trajectory consumers can see the
//! measurement context (the dev containers here are 1-core).
//!
//! With `--store DIR` (or `PNP_STORE`), datasets and trained-model grids
//! come from the content-addressed artifact store when warm — a second run
//! is load-and-evaluate with a byte-identical verdict list (DESIGN.md §12).
//! `--verify-store` additionally recomputes on every hit and byte-compares;
//! a mismatch (broken key contract) also exits non-zero.
//!
//! `--ood-seed` / `--ood-kernels` choose the generated out-of-distribution
//! corpus the `ood.*` invariants gate (DESIGN.md §13); the defaults pin the
//! byte-identical corpus CI scores.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::validate::{
    run_full_validation, ValidationOptions, DEFAULT_OOD_KERNELS, DEFAULT_OOD_SEED,
};

/// The flags this binary understands that take one value (`--flag V` or
/// `--flag=V`): its own `--apps`/`--out`, plus the worker-count and store
/// knobs the shared `pnp_bench` helpers scan the argument list for.
const KNOWN_FLAGS: [&str; 7] = [
    "--apps",
    "--out",
    "--sweep-threads",
    "--train-threads",
    "--store",
    "--ood-seed",
    "--ood-kernels",
];

/// Valueless boolean flags (also consumed by the `pnp_bench` store helper).
const KNOWN_BOOL_FLAGS: [&str; 2] = ["--force-rebuild", "--verify-store"];

/// Extracts the known flags and rejects everything else — a fidelity gate
/// should refuse, not guess: a typo'd `--app 6` silently validating the
/// full 30-application suite would gate CI on the wrong scope.
fn parse_args(args: &[String]) -> std::collections::BTreeMap<String, String> {
    let mut values = std::collections::BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if KNOWN_BOOL_FLAGS.contains(&arg.as_str()) {
            values.insert(arg.clone(), "1".to_string());
            i += 1;
            continue;
        }
        let known = KNOWN_FLAGS.iter().find(|f| {
            arg == **f
                || arg
                    .strip_prefix(**f)
                    .is_some_and(|rest| rest.starts_with('='))
        });
        let Some(flag) = known else {
            panic!(
                "unknown argument {arg:?} (expected one of {KNOWN_FLAGS:?} or {KNOWN_BOOL_FLAGS:?})"
            );
        };
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            values.insert(flag.to_string(), v.to_string());
            i += 1;
        } else {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"));
            values.insert(flag.to_string(), v.clone());
            i += 2;
        }
    }
    values
}

fn main() {
    banner(
        "Paper-fidelity validation",
        "machine-checks every figure/table against the paper's qualitative trends",
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let values = parse_args(&args);
    let apps = values.get("--apps").map(|v| v.parse().expect("--apps N"));
    let out = values
        .get("--out")
        .cloned()
        .unwrap_or_else(|| "VALIDATION.json".to_string());

    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let opts = ValidationOptions {
        settings,
        sweep_threads: sweep_threads_from_env(),
        apps,
        store: store_from_env(),
        ood_seed: values
            .get("--ood-seed")
            .map(|v| v.parse().expect("--ood-seed S"))
            .unwrap_or(DEFAULT_OOD_SEED),
        ood_kernels: values
            .get("--ood-kernels")
            .map(|v| v.parse().expect("--ood-kernels N"))
            .unwrap_or(DEFAULT_OOD_KERNELS),
    };

    let report = run_full_validation(&opts);
    println!("{}", report.render());
    if let Some(ood) = &report.ood {
        println!("{}", ood.render());
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, &json).expect("write VALIDATION.json");
    eprintln!("[validate_paper] wrote {out}");

    if let Some(store) = &opts.store {
        if report_store_stats("validate_paper", store) {
            eprintln!(
                "[validate_paper] FAIL: --verify-store found cached artifacts whose bytes \
                 differ from fresh computations (broken cache-key contract, DESIGN.md §12)"
            );
            std::process::exit(1);
        }
    }

    let hard = report.hard_failures();
    if !hard.is_empty() {
        eprintln!(
            "[validate_paper] FAIL: {} invariant(s) diverge from the paper without a \
             documented DESIGN.md §11 gap:",
            hard.len()
        );
        for inv in hard {
            eprintln!(
                "  {} ({}): {} — observed {}",
                inv.id, inv.citation, inv.claim, inv.observed
            );
        }
        std::process::exit(1);
    }
    if report.unexpected_passed > 0 {
        eprintln!(
            "[validate_paper] note: {} expected_fail invariant(s) now pass — \
             prune pnp_core::validate::EXPECTED_FAIL and DESIGN.md §11",
            report.unexpected_passed
        );
    }
    eprintln!("[validate_paper] all non-expected invariants hold");
}
