//! Regenerates Table II: the deep-learning model hyperparameters, as
//! instantiated by this implementation (quick and full configurations).

use pnp_bench::banner;
use pnp_core::training::TrainSettings;

fn print_settings(name: &str, s: &TrainSettings) {
    println!("\n{name}:");
    println!("  Layers        : RGCN ({}), FCNN (3)", s.rgcn_layers);
    println!("  Activations   : Leaky ReLU (RGCN), ReLU (dense)");
    println!("  Optimizer     : AdamW (amsgrad) for power-constrained tuning, Adam for EDP tuning");
    println!("  Learning rate : 0.001");
    println!("  Batch size    : {}", s.batch_size);
    println!("  Loss function : Cross-entropy");
    println!(
        "  Hidden width  : {} (readout), {} (dense)",
        s.hidden_dim, s.fc_hidden
    );
    println!("  Epochs        : {}", s.epochs);
    println!("  CV folds      : {}", s.folds);
}

fn main() {
    banner("Table II", "deep learning model hyperparameters");
    print_settings(
        "Paper-fidelity configuration (PNP_FULL=1)",
        &TrainSettings::full(),
    );
    print_settings(
        "Quick configuration (default on this container)",
        &TrainSettings::quick(),
    );
}
