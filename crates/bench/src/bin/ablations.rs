//! Runs the design-choice ablations listed in DESIGN.md §6: RGCN vs. plain
//! GCN, mean vs. sum readout pooling, and BLISS budget sensitivity.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::ablations;
use pnp_core::report::write_json;
use pnp_machine::haswell;

fn main() {
    banner(
        "Ablations",
        "RGCN vs GCN, readout pooling, BLISS budget sensitivity (Haswell)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results = ablations::run_with_store(&haswell(), &settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("ablations", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("ablations", store) {
            std::process::exit(1);
        }
    }
}
