//! Populates the content-addressed artifact store with everything the
//! figure/table drivers and the paper-fidelity harness consume: one dataset
//! per machine, every LOOCV trained-model grid (scenario 1 static+dynamic,
//! scenario 2 static+dynamic, unseen-power for both held-out caps), the
//! transfer-learning report, the ablation grid, the motivating-example
//! sweep, and the out-of-distribution artifacts (synthetic dataset + cached
//! OOD report, DESIGN.md §13) — so a subsequent `validate_paper --store …`
//! (or any experiment binary) is pure load-and-evaluate.
//!
//! ```text
//! warm_store --store DIR [--apps N] [--sweep-threads N] [--train-threads N]
//!            [--force-rebuild] [--verify-store]
//! ```
//!
//! The CI `warm-store` job runs this once per workflow (`--apps 6`), uploads
//! the store directory as an artifact, and the `validate` / `train-perf`
//! jobs download and reuse it instead of recomputing per job.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::artifact::DatasetCache;
use pnp_core::experiments::{self, motivating, ood, transfer};
use pnp_core::training::{
    train_scenario1_models_cached, train_scenario2_model_cached, train_unseen_power_cached,
};
use pnp_core::validate::{DEFAULT_OOD_KERNELS, DEFAULT_OOD_SEED};
use pnp_graph::Vocabulary;
use pnp_machine::{haswell, skylake};
use std::time::Instant;

/// Flags taking a value; `--apps` is warm_store's own, the rest are scanned
/// by the shared `pnp_bench` helpers.
const KNOWN_FLAGS: [&str; 4] = ["--apps", "--store", "--sweep-threads", "--train-threads"];
/// Valueless flags (consumed by the shared store helper).
const KNOWN_BOOL_FLAGS: [&str; 2] = ["--force-rebuild", "--verify-store"];

/// Minimal strict parse: reject unknown flags (a typo'd `--app 6` would
/// silently warm the wrong suite) and extract `--apps`.
fn apps_from_args(args: &[String]) -> Option<usize> {
    let mut apps = None;
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        if KNOWN_BOOL_FLAGS.contains(&arg.as_str()) {
            i += 1;
            continue;
        }
        let known = KNOWN_FLAGS.iter().find(|f| {
            arg == **f
                || arg
                    .strip_prefix(**f)
                    .is_some_and(|rest| rest.starts_with('='))
        });
        let Some(flag) = known else {
            panic!(
                "unknown argument {arg:?} (expected one of {KNOWN_FLAGS:?} or {KNOWN_BOOL_FLAGS:?})"
            );
        };
        let value = if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            i += 1;
            v.to_string()
        } else {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone();
            i += 2;
            v
        };
        if *flag == "--apps" {
            apps = Some(value.parse().expect("--apps N"));
        }
    }
    apps
}

fn main() {
    banner(
        "Artifact-store warm-up",
        "builds datasets + trains every model grid once, for reuse by every driver",
    );
    let args: Vec<String> = std::env::args().skip(1).collect();
    let apps_limit = apps_from_args(&args);

    let Some(store) = store_from_env() else {
        eprintln!("[warm_store] no store configured — pass --store DIR or set PNP_STORE");
        std::process::exit(2);
    };

    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();

    let mut apps = pnp_benchmarks::full_suite();
    if let Some(n) = apps_limit {
        apps.truncate(n);
    }
    let vocab = Vocabulary::standard();
    let t0 = Instant::now();

    // Datasets and their content-hash cache handles, kept for the
    // cross-machine block below (one fingerprint per dataset, total).
    let mut datasets = Vec::new();
    let mut caches: Vec<Option<DatasetCache>> = Vec::new();
    for machine in [haswell(), skylake()] {
        let ds = store.load_or_build_dataset(&machine, &apps, &vocab, sweep_threads);
        eprintln!(
            "[warm_store] {}: dataset ready ({} regions)",
            machine.name,
            ds.len()
        );
        if ds.is_empty() {
            eprintln!(
                "[warm_store] {}: empty suite, nothing to train",
                machine.name
            );
            datasets.push(ds);
            caches.push(None);
            continue;
        }
        let cache = store.for_dataset(&ds);
        for dynamic in [false, true] {
            train_scenario1_models_cached(&ds, &settings, dynamic, Some(&cache));
            train_scenario2_model_cached(&ds, &settings, dynamic, Some(&cache));
        }
        let held_out = [ds.space.power_levels.len() - 1, 0];
        for p in held_out {
            train_unseen_power_cached(&ds, &settings, p, Some(&cache));
        }
        eprintln!("[warm_store] {}: model grids ready", machine.name);
        datasets.push(ds);
        caches.push(Some(cache));
    }

    // Cross-machine artifacts: the transfer report (needs both datasets)
    // and the single-region motivating sweep.
    let (ds_haswell, ds_skylake) = (&datasets[0], &datasets[1]);
    if let (Some(cache_haswell), Some(cache_skylake)) = (&caches[0], &caches[1]) {
        let power_idx = ds_haswell.space.power_levels.len() - 1;
        transfer::run_on_datasets_cached(
            ds_haswell,
            ds_skylake,
            &settings,
            power_idx,
            Some((cache_haswell, cache_skylake)),
        );
        let _ = experiments::ablations::try_run_on_dataset_cached(
            ds_haswell,
            &settings,
            Some(cache_haswell),
        );

        // Out-of-distribution artifacts (DESIGN.md §13): the synthetic
        // evaluation dataset and the cached OOD report, under the same
        // default corpus the `validate` job gates.
        let eval = ood::build_synthetic_dataset(
            &haswell(),
            DEFAULT_OOD_SEED,
            DEFAULT_OOD_KERNELS,
            sweep_threads,
            Some(&store),
        );
        let cache_eval = store.for_dataset(&eval);
        let _ = ood::try_run_on_datasets_cached(
            ds_haswell,
            &eval,
            &settings,
            DEFAULT_OOD_SEED,
            DEFAULT_OOD_KERNELS,
            Some((cache_haswell, &cache_eval)),
        );
        eprintln!(
            "[warm_store] haswell: OOD artifacts ready ({} generated kernels)",
            DEFAULT_OOD_KERNELS
        );
    }
    motivating::run_with_store(sweep_threads, Some(&store));

    eprintln!(
        "[warm_store] done in {:.2}s ({} applications per machine)",
        t0.elapsed().as_secs_f64(),
        apps.len()
    );
    if report_store_stats("warm_store", &store) {
        std::process::exit(1);
    }
}
