//! Regenerates Figure 7: speedups and greenups over the default OpenMP
//! configuration at TDP when tuning for EDP (both testbeds, all tuners).
//!
//! Reads the JSON produced by `fig6_edp` when available (the two figures come
//! from the same experiment); otherwise re-runs the experiment.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::edp::{self, EdpResults};
use pnp_core::report::{write_json, TextTable};
use pnp_machine::{haswell, skylake};
use std::path::Path;

fn load_cached(machine: &str) -> Option<EdpResults> {
    let path = Path::new("target")
        .join("experiments")
        .join(format!("fig6_edp_{machine}.json"));
    let text = std::fs::read_to_string(path).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    banner(
        "Figure 7",
        "EDP tuning — speedups and greenups over default @ TDP",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    for machine in [haswell(), skylake()] {
        let results = load_cached(&machine.name).unwrap_or_else(|| {
            eprintln!(
                "[pnp-bench] no cached fig6 results for {}, re-running",
                machine.name
            );
            edp::run_with_store(&machine, &settings, sweep_threads, store.as_ref())
        });
        println!("\n--- {} ---", machine.name);
        let hdr = [
            "app",
            "default",
            "pnp_static",
            "pnp_dynamic",
            "bliss",
            "opentuner",
        ];
        println!("Speedups over default @ TDP");
        let mut t = TextTable::new(&hdr);
        for row in &results.rows {
            t.row_numeric(&row.app, &row.speedup);
        }
        println!("{}", t.render());
        println!("Greenups over default @ TDP");
        let mut t = TextTable::new(&hdr);
        for row in &results.rows {
            t.row_numeric(&row.app, &row.greenup);
        }
        println!("{}", t.render());
        let name = format!("fig7_edp_speedup_greenup_{}", machine.name);
        if let Ok(path) = write_json(&name, &results) {
            eprintln!("[pnp-bench] wrote {}", path.display());
        }
    }
    if let Some(store) = &store {
        if report_store_stats("fig7", store) {
            std::process::exit(1);
        }
    }
}
