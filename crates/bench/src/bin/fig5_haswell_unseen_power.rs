//! Regenerates Figure 5: generalization to unseen power constraints on
//! Haswell (train without the 40 W / 85 W measurements, predict for them).

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::unseen_power;
use pnp_core::report::write_json;
use pnp_machine::haswell;

fn main() {
    banner("Figure 5", "unseen power constraints, Haswell");
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results =
        unseen_power::run_with_store(&haswell(), &settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("fig5_haswell_unseen_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("fig5", store) {
            std::process::exit(1);
        }
    }
}
