//! Regenerates Figure 4: generalization to unseen power constraints on
//! Skylake (train without the 75 W / 150 W measurements, predict for them).

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::unseen_power;
use pnp_core::report::write_json;
use pnp_machine::skylake;

fn main() {
    banner("Figure 4", "unseen power constraints, Skylake");
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results =
        unseen_power::run_with_store(&skylake(), &settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("fig4_skylake_unseen_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("fig4", store) {
            std::process::exit(1);
        }
    }
}
