//! Regenerates Figure 2: power-constrained tuning on the Haswell testbed
//! (normalized speedups per application at 40/60/70/85 W for the default
//! configuration, PnP static/dynamic, BLISS, and OpenTuner).

use pnp_bench::{banner, settings_from_env, sweep_threads_from_env, train_threads_from_env};
use pnp_core::experiments::power_constrained;
use pnp_core::report::write_json;
use pnp_machine::haswell;

fn main() {
    banner(
        "Figure 2",
        "power-constrained tuning, Haswell (normalized by oracle)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let results = power_constrained::run_with(&haswell(), &settings, sweep_threads);
    println!("{}", results.render());
    if let Ok(path) = write_json("fig2_haswell_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
}
