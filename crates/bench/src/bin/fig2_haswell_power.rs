//! Regenerates Figure 2: power-constrained tuning on the Haswell testbed
//! (normalized speedups per application at 40/60/70/85 W for the default
//! configuration, PnP static/dynamic, BLISS, and OpenTuner).

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::power_constrained;
use pnp_core::report::write_json;
use pnp_machine::haswell;

fn main() {
    banner(
        "Figure 2",
        "power-constrained tuning, Haswell (normalized by oracle)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    let results =
        power_constrained::run_with_store(&haswell(), &settings, sweep_threads, store.as_ref());
    println!("{}", results.render());
    if let Ok(path) = write_json("fig2_haswell_power", &results) {
        eprintln!("[pnp-bench] wrote {}", path.display());
    }
    if let Some(store) = &store {
        if report_store_stats("fig2", store) {
            std::process::exit(1);
        }
    }
}
