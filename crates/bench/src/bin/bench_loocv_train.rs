//! Perf-tracking harness for the parallel LOOCV training pipeline.
//!
//! Builds one dataset, then trains the scenario-1 (power-constrained) and
//! scenario-2 (EDP) cross-validation pipelines at a list of training worker
//! counts, measures wall time, checks that every run's predictions are
//! identical to the 1-worker baseline, and writes the timings as
//! machine-readable JSON — the training-side twin of `bench_dataset_build`
//! and the source of the committed `BENCH_loocv_train.json` perf trajectory.
//!
//! ```text
//! bench_loocv_train [--threads 1,2,4,8] [--apps N] [--machine haswell|skylake]
//!                   [--repeats N] [--min-speedup S:T] [--out PATH]
//! ```
//!
//! Exits non-zero when any run's predictions differ from the baseline, so CI
//! can use it directly as the training determinism gate. `--min-speedup S:T`
//! adds a perf gate: the run at `T` workers must reach speedup ≥ `S` over
//! serial training — guarding against the fan-out silently degenerating to a
//! serial loop (which no prediction comparison can catch). The gate is
//! skipped with a warning when the host has fewer than `T` cores, where the
//! speedup physically cannot materialize.

use pnp_bench::{banner, enforce_min_speedup, report_store_stats, PerfHarnessOptions, Provenance};
use pnp_benchmarks::full_suite;
use pnp_core::training::{train_scenario1_models, train_scenario2_model, TrainSettings};
use pnp_openmp::Threads;
use serde::Serialize;
use std::time::Instant;

/// One measured training pass (scenario 1 + scenario 2).
#[derive(Clone, Debug, Serialize)]
struct Run {
    /// Training worker count.
    threads: usize,
    /// Best-of-`repeats` wall time in seconds (both scenarios combined).
    wall_s: f64,
    /// `wall_s(1 worker) / wall_s(this)` — the headline speedup.
    speedup_vs_1t: f64,
    /// Whether the scenario-1 predictions equal the 1-worker baseline.
    scenario1_identical_to_1t: bool,
    /// Whether the scenario-2 predictions equal the 1-worker baseline.
    scenario2_identical_to_1t: bool,
}

/// The `BENCH_loocv_train.json` schema.
#[derive(Clone, Debug, Serialize)]
struct Report {
    /// Benchmark identifier (always `"loocv_train"`).
    bench: String,
    /// Machine whose dataset the models were trained on.
    machine: String,
    /// Number of applications in the dataset.
    applications: usize,
    /// Number of OpenMP regions.
    regions: usize,
    /// Cross-validation folds actually planned.
    folds: usize,
    /// Power levels (scenario 1 trains one model per fold per level).
    power_levels: usize,
    /// Independent scenario-1 training jobs (`folds × power_levels`).
    scenario1_jobs: usize,
    /// Training epochs per model.
    epochs: usize,
    /// Measurement provenance: git SHA, store-key schema version, and
    /// `available_parallelism` of the measuring host (without spare cores
    /// the speedups cannot materialize) — the same attribution contract as
    /// `VALIDATION.json`'s context header.
    context: Provenance,
    /// Best-of-`repeats` timing per worker count.
    runs: Vec<Run>,
}

/// One timed training pass at a fixed worker count.
fn train_once(
    ds: &pnp_core::dataset::Dataset,
    settings: &TrainSettings,
    workers: usize,
) -> (f64, Vec<Vec<usize>>, Vec<usize>) {
    let mut settings = settings.clone();
    settings.train_threads = Threads::Fixed(workers);
    let start = Instant::now();
    let s1 = train_scenario1_models(ds, &settings, false);
    let s2 = train_scenario2_model(ds, &settings, false);
    (start.elapsed().as_secs_f64(), s1, s2)
}

fn main() {
    banner(
        "loocv_train timing",
        "LOOCV training wall time per worker count + determinism check",
    );
    let opts = PerfHarnessOptions::parse("BENCH_loocv_train.json");
    let mut apps = full_suite();
    if let Some(n) = opts.apps {
        apps.truncate(n);
    }
    let context = Provenance::capture();
    let available = context.available_parallelism;

    // The dataset build is not what this harness measures; build it once up
    // front (parallel sweep, auto workers) and share it across every run —
    // or serve it straight from the artifact store when one is warm (the CI
    // train-perf job reuses the warm-store artifact exactly here). The
    // *training* below never touches the store: it is the measured quantity.
    let machine = opts.machine.clone();
    let store = opts.open_store();
    let vocab = pnp_graph::Vocabulary::standard();
    let ds = match &store {
        Some(store) => store.load_or_build_dataset(&machine, &apps, &vocab, Threads::Auto),
        None => {
            pnp_core::dataset::Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Auto)
        }
    };
    let settings = TrainSettings::from_env();
    let folds = pnp_core::training::FoldPlan::new(&ds.applications(), settings.folds).len();
    let power_levels = ds.space.power_levels.len();

    // The 1-worker pass is always the determinism anchor and the speedup
    // denominator, measured best-of-`repeats` like every other entry.
    let mut wall_1t = f64::INFINITY;
    let mut baseline_s1 = Vec::new();
    let mut baseline_s2 = Vec::new();
    for r in 0..opts.repeats {
        let (wall, s1, s2) = train_once(&ds, &settings, 1);
        wall_1t = wall_1t.min(wall);
        if r == 0 {
            baseline_s1 = s1;
            baseline_s2 = s2;
        }
    }

    let mut runs = Vec::new();
    let mut all_identical = true;
    for &threads in &opts.threads {
        let (best, s1_identical, s2_identical) = if threads == 1 {
            (wall_1t, true, true)
        } else {
            let mut best = f64::INFINITY;
            let mut s1_id = true;
            let mut s2_id = true;
            for _ in 0..opts.repeats {
                let (wall, s1, s2) = train_once(&ds, &settings, threads);
                best = best.min(wall);
                s1_id &= s1 == baseline_s1;
                s2_id &= s2 == baseline_s2;
            }
            (best, s1_id, s2_id)
        };
        all_identical &= s1_identical && s2_identical;
        eprintln!(
            "[bench_loocv_train] {threads:>2} workers: {best:.3} s  \
             s1_identical={s1_identical} s2_identical={s2_identical}"
        );
        runs.push(Run {
            threads,
            wall_s: best,
            speedup_vs_1t: wall_1t / best,
            scenario1_identical_to_1t: s1_identical,
            scenario2_identical_to_1t: s2_identical,
        });
    }
    let report = Report {
        bench: "loocv_train".into(),
        machine: machine.name.clone(),
        applications: apps.len(),
        regions: ds.len(),
        folds,
        power_levels,
        scenario1_jobs: folds * power_levels,
        epochs: settings.epochs,
        context,
        runs,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, &json).expect("write timing JSON");
    println!("{json}");
    eprintln!("[bench_loocv_train] wrote {}", opts.out);
    if let Some(store) = &store {
        if report_store_stats("bench_loocv_train", store) {
            eprintln!(
                "[bench_loocv_train] FAIL: --verify-store found cached bytes differing from \
                 fresh computations (broken cache-key contract, DESIGN.md §12)"
            );
            std::process::exit(1);
        }
    }

    if !all_identical {
        eprintln!("[bench_loocv_train] FAIL: some training run differs from the 1-worker baseline");
        std::process::exit(1);
    }

    let speedups: Vec<(usize, f64)> = report
        .runs
        .iter()
        .map(|r| (r.threads, r.speedup_vs_1t))
        .collect();
    enforce_min_speedup("bench_loocv_train", opts.min_speedup, &speedups, available);
}
