//! Regenerates the §IV-C headline numbers ("Table 4" in EXPERIMENTS.md):
//! geometric-mean EDP improvement, speedup, and greenup over the default
//! configuration at TDP for both machines.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::edp::{self, EdpResults};
use pnp_core::report::TextTable;
use pnp_machine::{haswell, skylake};
use std::path::Path;

fn load_cached(machine: &str) -> Option<EdpResults> {
    let path = Path::new("target")
        .join("experiments")
        .join(format!("fig6_edp_{machine}.json"));
    serde_json::from_str(&std::fs::read_to_string(path).ok()?).ok()
}

fn main() {
    banner("Section IV-C summary", "EDP tuning headline numbers");
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    for machine in [haswell(), skylake()] {
        let results = load_cached(&machine.name).unwrap_or_else(|| {
            eprintln!(
                "[pnp-bench] no cached fig6 results for {}, re-running",
                machine.name
            );
            edp::run_with_store(&machine, &settings, sweep_threads, store.as_ref())
        });
        println!("\n--- {} ---", results.machine);
        let mut t = TextTable::new(&["metric", "pnp_static", "pnp_dynamic", "bliss", "opentuner"]);
        t.row_numeric(
            "geomean EDP improvement",
            &results.summary.geomean_edp_improvement,
        );
        t.row_numeric("geomean speedup", &results.summary.geomean_speedup);
        t.row_numeric("geomean greenup", &results.summary.geomean_greenup);
        println!("{}", t.render());
        println!(
            "PnP static: faster than default in {:.0}% of regions, less energy in {:.0}%",
            100.0 * results.summary.pnp_speedup_cases,
            100.0 * results.summary.pnp_greenup_cases
        );
    }
    if let Some(store) = &store {
        if report_store_stats("table4", store) {
            std::process::exit(1);
        }
    }
}
