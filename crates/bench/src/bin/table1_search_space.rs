//! Regenerates Table I: the tuning search space on both machines.

use pnp_bench::banner;
use pnp_machine::{haswell, skylake};
use pnp_tuners::SearchSpace;

fn main() {
    banner("Table I", "search space for performance and power tuning");
    for machine in [skylake(), haswell()] {
        let space = SearchSpace::for_machine(&machine);
        println!(
            "\n{} ({} cores, {} hardware threads)",
            machine.name,
            machine.total_cores(),
            machine.total_hw_threads()
        );
        println!(
            "  Power limits     : {}",
            space
                .power_levels
                .iter()
                .map(|p| format!("{p:.0}W"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  Number of threads: {}",
            space
                .thread_counts
                .iter()
                .map(|t| t.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  Scheduling policy: {}",
            space
                .schedules
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  Chunk sizes      : {}",
            space
                .chunk_sizes
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!(
            "  => {} tuned configurations (+{} defaults) = {} valid configurations",
            space.num_tuned_points(),
            space.power_levels.len(),
            space.num_valid_points()
        );
    }
}
