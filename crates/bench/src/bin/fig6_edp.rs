//! Regenerates Figure 6: normalized EDP improvement over the default OpenMP
//! configuration at TDP, per application, on both testbeds.

use pnp_bench::{
    banner, report_store_stats, settings_from_env, store_from_env, sweep_threads_from_env,
    train_threads_from_env,
};
use pnp_core::experiments::edp;
use pnp_core::report::write_json;
use pnp_machine::{haswell, skylake};

fn main() {
    banner(
        "Figure 6",
        "EDP tuning — normalized EDP improvements (both machines)",
    );
    let mut settings = settings_from_env();
    settings.train_threads = train_threads_from_env();
    let sweep_threads = sweep_threads_from_env();
    let store = store_from_env();
    for machine in [skylake(), haswell()] {
        let results = edp::run_with_store(&machine, &settings, sweep_threads, store.as_ref());
        println!("{}", results.render());
        let name = format!("fig6_edp_{}", machine.name);
        if let Ok(path) = write_json(&name, &results) {
            eprintln!("[pnp-bench] wrote {}", path.display());
        }
    }
    if let Some(store) = &store {
        if report_store_stats("fig6", store) {
            std::process::exit(1);
        }
    }
}
