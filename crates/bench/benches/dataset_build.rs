//! Criterion bench: the exhaustive dataset sweep at different worker counts.
//!
//! Uses a small application subset so the bench converges quickly; the
//! `bench_dataset_build` binary covers the full suite and emits the
//! machine-readable perf-trajectory JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::full_suite;
use pnp_core::dataset::Dataset;
use pnp_graph::Vocabulary;
use pnp_machine::haswell;
use pnp_openmp::Threads;

fn bench_dataset_build(c: &mut Criterion) {
    let machine = haswell();
    let mut apps = full_suite();
    apps.truncate(4);
    let vocab = Vocabulary::standard();

    let mut group = c.benchmark_group("dataset_build");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("subset_{workers}_threads"), |b| {
            b.iter(|| Dataset::build_with_threads(&machine, &apps, &vocab, Threads::Fixed(workers)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dataset_build);
criterion_main!(benches);
