//! Criterion bench: fused block-diagonal inference vs per-graph forwards.
//!
//! Measures what DESIGN.md §15 claims: `B` graphs through one
//! `predict_proba_batch` call cost one tall matmul per relation per layer,
//! against `B` separate `predict_proba` calls costing `B` small ones.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::builders::{matmul_kernel, stencil2d_kernel, streaming_kernel};
use pnp_gnn::{GraphBatch, ModelConfig, PnPModel};
use pnp_graph::{build_region_graph, EncodedGraph, Vocabulary};
use pnp_ir::lower_kernel;

fn encoded(region: &pnp_benchmarks::BenchRegion) -> EncodedGraph {
    let module = lower_kernel("app", std::slice::from_ref(&region.source));
    let graph = build_region_graph(&module, &region.source.name).unwrap();
    EncodedGraph::encode(&graph, &Vocabulary::standard())
}

fn model(hidden: usize, layers: usize) -> PnPModel {
    PnPModel::new(ModelConfig {
        vocab_size: Vocabulary::standard().len(),
        hidden_dim: hidden,
        num_rgcn_layers: layers,
        fc_hidden: 64,
        num_classes: 126,
        num_relations: 3,
        num_dynamic_features: 0,
        dropout: 0.0,
        seed: 1,
    })
}

fn bench_inference(c: &mut Criterion) {
    let base = [
        encoded(&matmul_kernel("mm", 500, 500, 500)),
        encoded(&stencil2d_kernel("st", 1000, 1000, 9)),
        encoded(&streaming_kernel("sx", 80_000, 2, 1.0)),
    ];
    let mut group = c.benchmark_group("inference");
    for batch_size in [8usize, 32] {
        let graphs: Vec<&EncodedGraph> = (0..batch_size).map(|i| &base[i % base.len()]).collect();
        for (hidden, layers) in [(16usize, 2usize), (32, 4)] {
            let mut m = model(hidden, layers);
            group.bench_function(format!("single_b{batch_size}_h{hidden}_l{layers}"), |b| {
                b.iter(|| {
                    graphs
                        .iter()
                        .map(|g| m.predict_proba(g, None))
                        .collect::<Vec<_>>()
                })
            });
            let mut m = model(hidden, layers);
            group.bench_function(format!("fused_b{batch_size}_h{hidden}_l{layers}"), |b| {
                b.iter(|| {
                    let batch = GraphBatch::from_graphs(&graphs).unwrap();
                    m.predict_proba_batch(&batch, None)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
