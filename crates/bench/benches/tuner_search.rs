//! Criterion bench: wall-clock cost of each tuner on one region — the cost
//! asymmetry (oracle ≫ OpenTuner > BLISS ≫ PnP inference) that motivates the
//! static approach.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::builders::matmul_kernel;
use pnp_machine::haswell;
use pnp_tuners::{BlissTuner, Objective, OpenTunerLike, OracleTuner, SearchSpace, SimEvaluator};

fn bench_tuners(c: &mut Criterion) {
    let machine = haswell();
    let space = SearchSpace::for_machine(&machine);
    let region = matmul_kernel("mm", 400, 400, 400);
    let objective = Objective::TimeAtPower { power_watts: 60.0 };

    let mut group = c.benchmark_group("tuner_search");
    group.sample_size(10);
    group.bench_function("oracle_126_configs", |b| {
        b.iter(|| {
            let eval = SimEvaluator::new(machine.clone(), region.profile.clone());
            OracleTuner::new(&space).tune(&eval, &objective)
        })
    });
    group.bench_function("bliss_20_samples", |b| {
        b.iter(|| {
            let eval = SimEvaluator::new(machine.clone(), region.profile.clone());
            BlissTuner::new(&space, 1).tune(&eval, &objective)
        })
    });
    group.bench_function("opentuner_60_samples", |b| {
        b.iter(|| {
            let eval = SimEvaluator::new(machine.clone(), region.profile.clone());
            OpenTunerLike::new(&space, 2).tune(&eval, &objective)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tuners);
criterion_main!(benches);
