//! Criterion bench: the real parallel-for executor under each scheduling
//! policy on the host machine.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_openmp::{OmpConfig, Schedule, ThreadPool};

fn bench_executor(c: &mut Criterion) {
    let n = 50_000;
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    let work = |i: usize| -> f64 {
        let mut acc = i as f64;
        for k in 0..20 {
            acc = (acc + k as f64).sqrt() + 1.0;
        }
        acc
    };

    let mut group = c.benchmark_group("openmp_executor");
    group.sample_size(20);
    group.bench_function("serial_reference", |b| {
        b.iter(|| (0..n).map(work).sum::<f64>())
    });
    for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Guided] {
        let config = OmpConfig::new(threads, schedule, Some(256));
        let pool = ThreadPool::new(config);
        group.bench_function(format!("parallel_{schedule}_chunk256"), |b| {
            b.iter(|| pool.parallel_reduce_sum(n, work))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
