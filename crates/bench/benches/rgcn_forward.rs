//! Criterion bench: RGCN forward and forward+backward cost per code graph.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::builders::{matmul_kernel, stencil2d_kernel};
use pnp_gnn::{ModelConfig, PnPModel};
use pnp_graph::{build_region_graph, EncodedGraph, Vocabulary};
use pnp_ir::lower_kernel;
use pnp_tensor::cross_entropy;

fn encoded(region: &pnp_benchmarks::BenchRegion) -> EncodedGraph {
    let module = lower_kernel("app", std::slice::from_ref(&region.source));
    let graph = build_region_graph(&module, &region.source.name).unwrap();
    EncodedGraph::encode(&graph, &Vocabulary::standard())
}

fn model(hidden: usize, layers: usize) -> PnPModel {
    PnPModel::new(ModelConfig {
        vocab_size: Vocabulary::standard().len(),
        hidden_dim: hidden,
        num_rgcn_layers: layers,
        fc_hidden: 64,
        num_classes: 126,
        num_relations: 3,
        num_dynamic_features: 0,
        dropout: 0.0,
        seed: 1,
    })
}

fn bench_rgcn(c: &mut Criterion) {
    let graphs = vec![
        ("matmul_graph", encoded(&matmul_kernel("mm", 500, 500, 500))),
        (
            "stencil_graph",
            encoded(&stencil2d_kernel("st", 1000, 1000, 9)),
        ),
    ];
    let mut group = c.benchmark_group("rgcn");
    for (name, g) in &graphs {
        for (hidden, layers) in [(16usize, 2usize), (32, 4)] {
            let mut m = model(hidden, layers);
            group.bench_function(format!("forward_{name}_h{hidden}_l{layers}"), |b| {
                b.iter(|| m.forward(g, None, false))
            });
            let mut m = model(hidden, layers);
            group.bench_function(format!("train_step_{name}_h{hidden}_l{layers}"), |b| {
                b.iter(|| {
                    let logits = m.forward(g, None, true);
                    let (_, dl) = cross_entropy(&logits, &[3]);
                    m.backward(&dl);
                    m.zero_grad();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rgcn);
criterion_main!(benches);
