//! Criterion bench: kernel DSL → IR → PROGRAML-style graph throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pnp_benchmarks::builders::{lookup_kernel, matmul_kernel, stencil2d_kernel};
use pnp_graph::{build_region_graph, EncodedGraph, Vocabulary};
use pnp_ir::lower_kernel;

fn bench_graph_construction(c: &mut Criterion) {
    let kernels = vec![
        ("matmul", matmul_kernel("mm", 500, 500, 500)),
        ("stencil", stencil2d_kernel("st", 1000, 1000, 9)),
        ("lookup", lookup_kernel("lk", 500_000, 2e8, "xs", 12, 0.9)),
    ];
    let vocab = Vocabulary::standard();

    let mut group = c.benchmark_group("graph_construction");
    for (name, region) in &kernels {
        group.bench_function(format!("lower_{name}"), |b| {
            b.iter(|| lower_kernel("app", std::slice::from_ref(&region.source)))
        });
        let module = lower_kernel("app", std::slice::from_ref(&region.source));
        group.bench_function(format!("build_graph_{name}"), |b| {
            b.iter(|| build_region_graph(&module, &region.source.name).unwrap())
        });
        let graph = build_region_graph(&module, &region.source.name).unwrap();
        group.bench_function(format!("encode_{name}"), |b| {
            b.iter_batched(
                || graph.clone(),
                |g| EncodedGraph::encode(&g, &vocab),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_construction);
criterion_main!(benches);
