//! Criterion bench: the LOOCV training fan-out at different worker counts.
//!
//! Uses a small application subset and a reduced epoch budget so the bench
//! converges quickly; the `bench_loocv_train` binary covers the realistic
//! configuration and emits the machine-readable perf-trajectory JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::full_suite;
use pnp_core::dataset::Dataset;
use pnp_core::training::{train_scenario1_models, TrainSettings};
use pnp_graph::Vocabulary;
use pnp_machine::haswell;
use pnp_openmp::Threads;

fn bench_loocv_train(c: &mut Criterion) {
    let machine = haswell();
    let mut apps = full_suite();
    apps.truncate(3);
    let ds = Dataset::build_with_threads(&machine, &apps, &Vocabulary::standard(), Threads::Auto);
    let mut settings = TrainSettings::quick();
    settings.epochs = 4;
    settings.folds = 3;

    let mut group = c.benchmark_group("loocv_train");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        settings.train_threads = Threads::Fixed(workers);
        let settings = settings.clone();
        group.bench_function(format!("scenario1_{workers}_workers"), |b| {
            b.iter(|| train_scenario1_models(&ds, &settings, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_loocv_train);
criterion_main!(benches);
