//! Criterion bench: analytic execution-model throughput (configurations
//! evaluated per second) — this bounds how fast exhaustive sweeps and
//! execution-based tuners run.

use criterion::{criterion_group, criterion_main, Criterion};
use pnp_benchmarks::builders::{lookup_kernel, matmul_kernel, streaming_kernel};
use pnp_machine::{haswell, PowerModel};
use pnp_openmp::sim::simulate_region_with_model;
use pnp_openmp::{OmpConfig, Schedule};

fn bench_simulator(c: &mut Criterion) {
    let machine = haswell();
    let power_model = PowerModel::for_machine(&machine);
    let regions = vec![
        ("compute_bound", matmul_kernel("mm", 600, 600, 600)),
        ("memory_bound", streaming_kernel("st", 2_000_000, 3, 1.0)),
        (
            "irregular",
            lookup_kernel("lk", 1_000_000, 5e8, "xs", 16, 1.2),
        ),
    ];
    let configs = [
        OmpConfig::new(32, Schedule::Static, None),
        OmpConfig::new(16, Schedule::Dynamic, Some(8)),
        OmpConfig::new(8, Schedule::Guided, Some(64)),
    ];

    let mut group = c.benchmark_group("simulator");
    for (name, region) in &regions {
        group.bench_function(format!("single_config_{name}"), |b| {
            b.iter(|| {
                simulate_region_with_model(
                    &machine,
                    &power_model,
                    &region.profile,
                    &configs[1],
                    60.0,
                )
            })
        });
        group.bench_function(format!("config_sweep_{name}"), |b| {
            b.iter(|| {
                let mut total = 0.0;
                for config in &configs {
                    for cap in [40.0, 60.0, 70.0, 85.0] {
                        total += simulate_region_with_model(
                            &machine,
                            &power_model,
                            &region.profile,
                            config,
                            cap,
                        )
                        .time_s;
                    }
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
