//! Integration tests for the persisted store index (ISSUE 7 satellite):
//! rebuild-equals-persisted over a populated store, stale detection when an
//! artifact lands, and — the concurrency contract — readers loading the
//! index while a writer republishes it via atomic rename must only ever see
//! complete, parseable snapshots.

use pnp_store::{ArtifactKey, Store, StoreIndex};
use std::fs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn temp_store(tag: &str) -> Store {
    let dir = std::env::temp_dir().join(format!("pnp_index_it_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    Store::open(dir)
}

fn model_key(i: usize) -> ArtifactKey {
    ArtifactKey::new("models/scenario1")
        .field("machine", "haswell")
        .field("fold", i)
}

#[test]
fn rebuilt_index_equals_persisted_index_across_kinds() {
    let store = temp_store("rebuild_eq");
    store
        .save(
            &ArtifactKey::new("dataset").field("apps", "a+b"),
            &vec![1u32],
        )
        .unwrap();
    for i in 0..4 {
        store.save(&model_key(i), &vec![i]).unwrap();
    }
    let built = StoreIndex::build(&store);
    built.persist(&store).unwrap();
    let loaded = StoreIndex::load(&store).expect("persisted index loads");
    assert_eq!(built.entries(), loaded.entries());
    assert_eq!(loaded.len(), 5);
    assert_eq!(loaded.of_kind("models/scenario1").count(), 4);
    assert!(!loaded.is_stale(&store));
    fs::remove_dir_all(store.root()).ok();
}

#[test]
fn new_artifact_makes_the_persisted_index_stale_and_rebuild_heals_it() {
    let store = temp_store("stale_heal");
    store.save(&model_key(0), &vec![0usize]).unwrap();
    let index = StoreIndex::load_or_rebuild(&store);
    assert!(!index.is_stale(&store));
    store.save(&model_key(1), &vec![1usize]).unwrap();
    assert!(index.is_stale(&store), "new artifact must be detected");
    let healed = StoreIndex::load_or_rebuild(&store);
    assert_eq!(healed.len(), 2);
    assert!(!healed.is_stale(&store));
    // The healed index was persisted back, so a plain load now sees it.
    assert_eq!(StoreIndex::load(&store).unwrap().len(), 2);
    fs::remove_dir_all(store.root()).ok();
}

#[test]
fn concurrent_readers_see_only_complete_index_snapshots() {
    let store = Arc::new(temp_store("concurrent"));
    store.save(&model_key(0), &vec![0usize]).unwrap();
    StoreIndex::build(&store).persist(&store).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let store = store.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut seen = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // The index file exists from before the writer starts and
                // every republish is an atomic rename, so a reader must
                // never observe a missing or partial file.
                let index = StoreIndex::load(&store).expect("complete index snapshot");
                assert!(!index.is_empty());
                for entry in index.entries() {
                    let key = entry.parse_key().expect("indexed key parses");
                    assert_eq!(key.address(), entry.address);
                }
                seen = seen.max(index.len());
            }
            seen
        }));
    }

    // Writer: land new artifacts and republish the index, one rename each.
    for i in 1..30 {
        store.save(&model_key(i), &vec![i]).unwrap();
        StoreIndex::build(&store).persist(&store).unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for reader in readers {
        let seen = reader.join().expect("reader panicked");
        assert!(seen >= 1);
    }
    assert_eq!(StoreIndex::load(&store).unwrap().len(), 30);
    fs::remove_dir_all(store.root()).ok();
}
