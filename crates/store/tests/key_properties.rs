//! Property-based tests for [`ArtifactKey`]'s canonical escaping (ISSUE 6
//! satellite): over generated kinds/names/values stuffed with the structural
//! characters (`|`, `=`, `\`, newlines) the canonical form must
//!
//! 1. **round-trip** — a test-side parser can split it on the literal
//!    separators and unescape back to exactly the original `(kind, fields)`
//!    identity, and
//! 2. be **injective** — two keys share a canonical string (and address) iff
//!    they have the same normalized identity.
//!
//! Both properties together are what make SHA-256 addressing sound: a
//! collision below the hash (two identities, one canonical string) would
//! silently alias unrelated artifacts.

use proptest::prelude::*;
use std::collections::BTreeMap;

use pnp_store::{ArtifactKey, SCHEMA_VERSION};

/// Alphabet biased toward the structural/escape characters, including the
/// escape targets `p`/`q`/`n` themselves (so sequences like `\` + `p` in the
/// *input* must stay distinguishable from an escaped `|`).
const ALPHABET: [char; 12] = ['a', 'b', 'p', 'q', 'n', '0', '/', '_', '|', '=', '\\', '\n'];

fn arb_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..ALPHABET.len(), 0..12)
        .prop_map(|idx| idx.into_iter().map(|i| ALPHABET[i]).collect())
}

fn arb_fields() -> impl Strategy<Value = Vec<(String, String)>> {
    // The vendored proptest has no tuple strategy: draw a flat run of
    // strings and pair them up.
    prop::collection::vec(arb_string(), 0..10).prop_map(|strings| {
        strings
            .chunks_exact(2)
            .map(|pair| (pair[0].clone(), pair[1].clone()))
            .collect()
    })
}

/// The normalized identity of a key: later duplicates of a field name win,
/// exactly like `ArtifactKey::field`'s overwrite semantics.
fn normalize(kind: &str, fields: &[(String, String)]) -> (String, BTreeMap<String, String>) {
    let mut map = BTreeMap::new();
    for (name, value) in fields {
        map.insert(name.clone(), value.clone());
    }
    (kind.to_string(), map)
}

fn build(kind: &str, fields: &[(String, String)]) -> ArtifactKey {
    let mut key = ArtifactKey::new(kind);
    for (name, value) in fields {
        key = key.field(name, value);
    }
    key
}

/// Inverts the canonical escaping: `\\` → `\`, `\p` → `|`, `\q` → `=`,
/// `\n` → newline. Any other escape (or a trailing `\`) is a parse error —
/// the canonical form must never produce one.
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('q') => out.push('='),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape {other:?} in {s:?}")),
        }
    }
    Ok(out)
}

/// Parses a canonical string back into `(kind, fields)`. Escaping guarantees
/// every literal `|` separates fields and every literal `=` separates a name
/// from its value, so plain `split` is sound here.
fn parse_canonical(canonical: &str) -> Result<(String, BTreeMap<String, String>), String> {
    let mut segments = canonical.split('|');
    let kind = unescape(segments.next().ok_or("empty canonical")?)?;
    let schema = segments.next().ok_or("missing schema segment")?;
    if schema != format!("schema={SCHEMA_VERSION}") {
        return Err(format!("unexpected schema segment {schema:?}"));
    }
    let mut fields = BTreeMap::new();
    for segment in segments {
        let (name, value) = segment
            .split_once('=')
            .ok_or_else(|| format!("field segment {segment:?} has no `=`"))?;
        // Exactly one literal `=` per segment: the value must not contain
        // another (it would mean an unescaped `=` leaked through).
        if value.contains('=') {
            return Err(format!("field segment {segment:?} has multiple `=`"));
        }
        fields.insert(unescape(name)?, unescape(value)?);
    }
    Ok((kind, fields))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn canonical_round_trips_through_a_parser(
        kind in arb_string(),
        fields in arb_fields(),
    ) {
        let key = build(&kind, &fields);
        let parsed = parse_canonical(&key.canonical());
        prop_assert!(parsed.is_ok(), "unparseable canonical: {:?}", parsed);
        prop_assert_eq!(parsed.unwrap(), normalize(&kind, &fields));
    }

    #[test]
    fn library_parse_agrees_with_the_test_oracle(
        kind in arb_string(),
        fields in arb_fields(),
    ) {
        // `ArtifactKey::parse` (promoted into the library for the store
        // index and model registry) must invert `canonical` exactly like the
        // independent parser above.
        let key = build(&kind, &fields);
        let parsed = ArtifactKey::parse(&key.canonical());
        prop_assert!(parsed.is_ok(), "library parse failed: {:?}", parsed);
        let parsed = parsed.unwrap();
        prop_assert_eq!(&parsed, &key);
        prop_assert_eq!(parsed.address(), key.address());
    }

    #[test]
    fn canonical_and_address_are_injective_on_identity(
        kind_a in arb_string(),
        fields_a in arb_fields(),
        kind_b in arb_string(),
        fields_b in arb_fields(),
    ) {
        let a = build(&kind_a, &fields_a);
        let b = build(&kind_b, &fields_b);
        let same_identity = normalize(&kind_a, &fields_a) == normalize(&kind_b, &fields_b);
        prop_assert_eq!(same_identity, a.canonical() == b.canonical());
        prop_assert_eq!(same_identity, a.address() == b.address());
    }

    #[test]
    fn address_shape_is_stable(kind in arb_string(), fields in arb_fields()) {
        let addr = build(&kind, &fields).address();
        prop_assert_eq!(addr.len(), 64);
        prop_assert!(addr.chars().all(|c| c.is_ascii_hexdigit() && !c.is_uppercase()));
    }
}

/// Deterministic aliasing probes the random sweep may not hit: every pair
/// renders identically under *unescaped* concatenation and must still get
/// distinct canonical strings.
#[test]
fn known_aliasing_pairs_stay_distinct() {
    let pairs = [
        (
            ArtifactKey::new("k").field("a", "1|b=2"),
            ArtifactKey::new("k").field("a", "1").field("b", "2"),
        ),
        (
            ArtifactKey::new("k").field("a=b", "c"),
            ArtifactKey::new("k").field("a", "b=c"),
        ),
        (
            ArtifactKey::new("k").field("a", "\\p"),
            ArtifactKey::new("k").field("a", "|"),
        ),
        (
            ArtifactKey::new("k").field("a", "\\n"),
            ArtifactKey::new("k").field("a", "\n"),
        ),
        (
            ArtifactKey::new("k|x").field("a", "1"),
            ArtifactKey::new("k").field("x\\pa", "1"),
        ),
    ];
    for (a, b) in pairs {
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.address(), b.address());
    }
}
