//! # pnp-store
//!
//! A content-addressed, versioned artifact store for the expensive, *bit-
//! deterministic* products of the PnP pipeline: built `Dataset`s (the
//! exhaustive sweep) and trained model weights (the LOOCV grids). PRs 2–3
//! made both bit-identical across worker counts, which is what makes them
//! cacheable at all; this crate turns that determinism into reuse — a warm
//! store turns a full `validate_paper` run into load-and-evaluate, and CI
//! jobs share one warm store instead of recomputing per job.
//!
//! Three pieces:
//!
//! * [`ArtifactKey`] — everything that determines an artifact's bytes,
//!   folded into a canonical string and SHA-256 content address
//!   (DESIGN.md §12 defines the per-kind key contract).
//! * [`Store`] — the on-disk store: atomic temp-file+rename writes,
//!   header+hash corruption detection (truncation, bit flips, key or schema
//!   mismatches all degrade to a rebuild, never a panic), a force-rebuild
//!   escape hatch, and a verify mode that re-computes on every hit and
//!   byte-compares against the cached payload.
//! * [`StoreIndex`] — a persisted index over the store (one header-derived
//!   [`IndexEntry`] per artifact), giving long-running consumers like the
//!   `pnp-serve` model registry O(1) lookup and enumeration without
//!   directory walks; stale or corrupt indexes heal by rebuilding from the
//!   artifact headers.
//! * [`hash`] — a self-contained SHA-256 (the build environment has no
//!   registry access).
//!
//! Knobs (all also available as CLI flags on the `pnp-bench` binaries):
//! `PNP_STORE=<dir>` enables the store, `PNP_STORE_FORCE=1` ignores and
//! overwrites cached artifacts, `PNP_STORE_VERIFY=1` checks the bit-identity
//! contract on every hit.
//!
//! The domain-specific key builders (what exactly goes into a dataset or
//! model key) live in `pnp_core::artifact`, next to the types they cache.

pub mod hash;
mod index;
mod key;
mod store;

pub use hash::sha256_hex;
pub use index::{IndexEntry, StoreIndex, INDEX_FILE};
pub use key::ArtifactKey;
pub use store::{Store, StoreStats, FORCE_ENV_VAR, STORE_ENV_VAR, VERIFY_ENV_VAR};

/// Version of the on-disk artifact format *and* of the cache-key contract.
///
/// Bump this whenever the serialized form of a cached artifact changes, or
/// whenever code changes alter the bytes an existing key would produce (new
/// simulator physics, different seeding, ...). Old artifacts live under the
/// old `v<N>` directory and simply stop being found — no migration, no
/// corruption.
pub const SCHEMA_VERSION: u32 = 1;
