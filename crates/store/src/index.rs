//! A persisted index over the store: one small JSON file recording every
//! artifact's identity, so the model registry can enumerate and look up
//! artifacts in O(1) without directory walks or payload reads.
//!
//! The index is a pure cache of the artifact headers already on disk — it
//! holds no information of its own, so it can always be rebuilt from the
//! store, and [`StoreIndex::load_or_rebuild`] does exactly that whenever the
//! persisted copy is missing, corrupt, or stale (the set of artifact files
//! changed since it was written). It is published with the same atomic
//! temp-file+`rename` idiom as artifacts, so concurrent readers never see a
//! partial index.

use crate::hash::sha256_hex;
use crate::key::ArtifactKey;
use crate::store::{write_atomic, ArtifactHeader, Store};
use crate::SCHEMA_VERSION;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// File name of the persisted index, directly under `<root>/v<N>/`.
pub const INDEX_FILE: &str = "index.json";

/// One indexed artifact: its identity and payload digest, lifted verbatim
/// from the artifact file's header line (payloads are never read).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    /// Artifact family (e.g. `"models/scenario1"`).
    pub kind: String,
    /// Content address — SHA-256 of the canonical key, also the file stem.
    pub address: String,
    /// Full canonical key; [`ArtifactKey::parse`] recovers the field map.
    pub key: String,
    /// Payload length in bytes.
    pub payload_len: usize,
    /// SHA-256 of the payload bytes. For a stored dataset this doubles as
    /// the dataset fingerprint model keys embed, which is what lets the
    /// registry join models to their dataset via the index alone.
    pub payload_sha256: String,
}

impl IndexEntry {
    /// The entry's key, parsed back into structured form.
    pub fn parse_key(&self) -> Result<ArtifactKey, String> {
        ArtifactKey::parse(&self.key)
    }
}

/// On-disk form of the index: schema-stamped so a foreign-schema index is
/// rejected (and rebuilt) rather than misread. The `generation` stamp is
/// derived from the entries (see [`StoreIndex::generation`]); it is
/// persisted for operators and cross-checked on load.
#[derive(Serialize, Deserialize)]
struct IndexFile {
    schema: u32,
    generation: String,
    entries: Vec<IndexEntry>,
}

/// An in-memory index over one store: entries sorted by `(kind, address)`
/// (so a rebuild is byte-deterministic) plus an address → entry map for
/// O(1) lookup.
#[derive(Debug)]
pub struct StoreIndex {
    entries: Vec<IndexEntry>,
    by_address: HashMap<String, usize>,
    generation: String,
}

/// The content fingerprint of a sorted entry list: SHA-256 over every
/// entry's `(kind, address, payload_sha256)` triple. Pure function of the
/// indexed artifact set, so two indexes over identical store contents agree
/// regardless of how they were produced.
fn fingerprint(entries: &[IndexEntry]) -> String {
    let mut lines = String::new();
    for entry in entries {
        lines.push_str(&entry.kind);
        lines.push('\0');
        lines.push_str(&entry.address);
        lines.push('\0');
        lines.push_str(&entry.payload_sha256);
        lines.push('\n');
    }
    sha256_hex(lines.as_bytes())
}

impl StoreIndex {
    /// Where the persisted index for `store` lives.
    pub fn file_path(store: &Store) -> PathBuf {
        store
            .root()
            .join(format!("v{SCHEMA_VERSION}"))
            .join(INDEX_FILE)
    }

    fn from_entries(mut entries: Vec<IndexEntry>) -> StoreIndex {
        entries.sort_by(|a, b| (&a.kind, &a.address).cmp(&(&b.kind, &b.address)));
        let by_address = entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.address.clone(), i))
            .collect();
        let generation = fingerprint(&entries);
        StoreIndex {
            entries,
            by_address,
            generation,
        }
    }

    /// The index's generation stamp: a deterministic content fingerprint of
    /// the indexed artifact set (kinds, addresses, and payload digests).
    /// Any artifact landing, vanishing, or changing payload changes the
    /// generation — which is what the serve daemon's reload watcher polls
    /// to detect that newly trained grids reached the store.
    pub fn generation(&self) -> &str {
        &self.generation
    }

    /// Builds the index by walking the store and reading only each artifact
    /// file's header line. Unreadable or inconsistent files (bad header, or
    /// a header whose key does not hash to the file's own name) are logged
    /// and skipped — the same degrade-to-miss stance the store takes — so a
    /// build never fails, it just indexes what is valid. A missing store
    /// directory yields an empty index.
    pub fn build(store: &Store) -> StoreIndex {
        let mut entries = Vec::new();
        for path in artifact_files(store) {
            let stem = match path.file_stem().and_then(|s| s.to_str()) {
                Some(s) => s.to_string(),
                None => continue,
            };
            let header = match ArtifactHeader::read_from(&path) {
                Ok(h) => h,
                Err(why) => {
                    eprintln!("[pnp-store] not indexing {} ({why})", path.display());
                    continue;
                }
            };
            match ArtifactKey::parse(&header.key) {
                Ok(key) if key.kind() == header.kind && key.address() == stem => {}
                Ok(_) => {
                    eprintln!(
                        "[pnp-store] not indexing {} (header key does not match its \
                         path — a file renamed into place by hand?)",
                        path.display()
                    );
                    continue;
                }
                Err(why) => {
                    eprintln!(
                        "[pnp-store] not indexing {} (unparseable key: {why})",
                        path.display()
                    );
                    continue;
                }
            }
            entries.push(IndexEntry {
                kind: header.kind,
                address: stem,
                key: header.key,
                payload_len: header.payload_len,
                payload_sha256: header.payload_sha256,
            });
        }
        StoreIndex::from_entries(entries)
    }

    /// Loads the persisted index, or `None` when it is absent, unreadable,
    /// or from a foreign schema (all of which callers treat as "rebuild").
    pub fn load(store: &Store) -> Option<StoreIndex> {
        let path = StoreIndex::file_path(store);
        let text = fs::read_to_string(&path).ok()?;
        let file: IndexFile = match serde_json::from_str(&text) {
            Ok(f) => f,
            Err(e) => {
                eprintln!(
                    "[pnp-store] corrupt index {} ({e}); rebuilding",
                    path.display()
                );
                return None;
            }
        };
        if file.schema != SCHEMA_VERSION {
            eprintln!(
                "[pnp-store] index {} has schema {}, this build reads {}; rebuilding",
                path.display(),
                file.schema,
                SCHEMA_VERSION
            );
            return None;
        }
        let index = StoreIndex::from_entries(file.entries);
        // The persisted stamp is redundant with the entries; a mismatch
        // means the file was edited by hand, and "rebuild" is safer than
        // guessing which half to believe.
        if file.generation != index.generation {
            eprintln!(
                "[pnp-store] index {} generation stamp does not match its \
                 entries; rebuilding",
                path.display()
            );
            return None;
        }
        Some(index)
    }

    /// Writes the index atomically to [`StoreIndex::file_path`].
    pub fn persist(&self, store: &Store) -> io::Result<PathBuf> {
        let path = StoreIndex::file_path(store);
        let file = IndexFile {
            schema: SCHEMA_VERSION,
            generation: self.generation.clone(),
            entries: self.entries.clone(),
        };
        let json = serde_json::to_string(&file)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        write_atomic(&path, json.as_bytes())?;
        Ok(path)
    }

    /// True when the set of artifact files on disk no longer matches this
    /// index — an artifact landed or vanished since it was written. The
    /// check walks file *names* only (no file is opened), so it is cheap
    /// enough to run on every daemon startup.
    pub fn is_stale(&self, store: &Store) -> bool {
        let on_disk: BTreeSet<PathBuf> = artifact_files(store).into_iter().collect();
        let indexed: BTreeSet<PathBuf> = self
            .entries
            .iter()
            .map(|e| {
                let mut path = store.root().join(format!("v{SCHEMA_VERSION}"));
                for part in e.kind.split('/') {
                    path.push(part);
                }
                path.push(format!("{}.json", e.address));
                path
            })
            .collect();
        on_disk != indexed
    }

    /// The workhorse: the persisted index when it is present and fresh,
    /// otherwise a rebuild from the store — persisted back for the next
    /// reader, with write failures degrading to a log line (a read-only
    /// store directory must not stop a daemon from starting).
    pub fn load_or_rebuild(store: &Store) -> StoreIndex {
        if let Some(index) = StoreIndex::load(store) {
            if !index.is_stale(store) {
                return index;
            }
            eprintln!(
                "[pnp-store] index {} is stale; rebuilding",
                StoreIndex::file_path(store).display()
            );
        }
        let index = StoreIndex::build(store);
        if let Err(e) = index.persist(store) {
            eprintln!(
                "[pnp-store] could not persist {} ({e}); continuing with the \
                 in-memory index",
                StoreIndex::file_path(store).display()
            );
        }
        index
    }

    /// O(1) lookup of one artifact's entry by key.
    pub fn get(&self, key: &ArtifactKey) -> Option<&IndexEntry> {
        let entry = self.entries.get(*self.by_address.get(&key.address())?)?;
        // The address is a hash of the canonical form, so this only guards
        // against an index edited by hand.
        (entry.key == key.canonical()).then_some(entry)
    }

    /// All entries, sorted by `(kind, address)`.
    pub fn entries(&self) -> &[IndexEntry] {
        &self.entries
    }

    /// The entries of one artifact family, in address order.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a IndexEntry> {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// Number of indexed artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the store holds no artifacts.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Every artifact file under `<root>/v<N>/`, skipping in-flight `.tmp-*`
/// files and the index itself. A missing directory yields an empty list.
fn artifact_files(store: &Store) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let root = store.root().join(format!("v{SCHEMA_VERSION}"));
    walk(&root, &mut files);
    files
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            walk(&path, files);
        } else if name.ends_with(".json") && !name.starts_with(".tmp-") && name != INDEX_FILE {
            files.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("pnp_index_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir)
    }

    #[test]
    fn empty_store_indexes_empty() {
        let store = temp_store("empty");
        let index = StoreIndex::build(&store);
        assert!(index.is_empty());
        assert!(!index.is_stale(&store));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn index_matches_store_and_supports_lookup() {
        let store = temp_store("lookup");
        let k1 = ArtifactKey::new("models/demo").field("epochs", 14);
        let k2 = ArtifactKey::new("dataset").field("apps", "a+b");
        store.save(&k1, &vec![1u32, 2]).unwrap();
        store.save(&k2, &vec![3u32]).unwrap();
        let index = StoreIndex::build(&store);
        assert_eq!(index.len(), 2);
        let entry = index.get(&k1).expect("indexed");
        assert_eq!(entry.kind, "models/demo");
        assert_eq!(entry.address, k1.address());
        assert_eq!(entry.parse_key().unwrap(), k1);
        assert_eq!(
            index.of_kind("dataset").count(),
            1,
            "kind filter sees exactly the dataset"
        );
        let absent = ArtifactKey::new("models/demo").field("epochs", 15);
        assert!(index.get(&absent).is_none());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corrupt_artifact_is_skipped_not_fatal() {
        let store = temp_store("corrupt");
        let good = ArtifactKey::new("k").field("a", 1);
        let bad = ArtifactKey::new("k").field("a", 2);
        store.save(&good, &1u32).unwrap();
        store.save(&bad, &2u32).unwrap();
        fs::write(store.artifact_path(&bad), b"garbage").unwrap();
        let index = StoreIndex::build(&store);
        assert_eq!(index.len(), 1);
        assert!(index.get(&good).is_some());
        assert!(index.get(&bad).is_none());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn staleness_tracks_the_file_set() {
        let store = temp_store("stale");
        let k1 = ArtifactKey::new("k").field("a", 1);
        store.save(&k1, &1u32).unwrap();
        let index = StoreIndex::build(&store);
        index.persist(&store).unwrap();
        assert!(!index.is_stale(&store));
        // A new artifact lands: stale. (The index file itself must not
        // count as an artifact.)
        let k2 = ArtifactKey::new("k").field("a", 2);
        store.save(&k2, &2u32).unwrap();
        assert!(index.is_stale(&store));
        // An artifact vanishing is stale too.
        fs::remove_file(store.artifact_path(&k2)).unwrap();
        assert!(!index.is_stale(&store));
        fs::remove_file(store.artifact_path(&k1)).unwrap();
        assert!(index.is_stale(&store));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn load_or_rebuild_heals_missing_corrupt_and_stale_indexes() {
        let store = temp_store("heal");
        let k1 = ArtifactKey::new("k").field("a", 1);
        store.save(&k1, &1u32).unwrap();
        // Missing: builds and persists.
        let index = StoreIndex::load_or_rebuild(&store);
        assert_eq!(index.len(), 1);
        assert!(StoreIndex::file_path(&store).exists());
        // Corrupt: rebuilt.
        fs::write(StoreIndex::file_path(&store), b"{not json").unwrap();
        assert_eq!(StoreIndex::load_or_rebuild(&store).len(), 1);
        // Stale: a new artifact lands and the rebuilt index includes it.
        let k2 = ArtifactKey::new("k").field("a", 2);
        store.save(&k2, &2u32).unwrap();
        let fresh = StoreIndex::load_or_rebuild(&store);
        assert_eq!(fresh.len(), 2);
        assert!(!fresh.is_stale(&store));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn generation_tracks_store_content_not_provenance() {
        let store = temp_store("generation");
        let k1 = ArtifactKey::new("k").field("a", 1);
        store.save(&k1, &1u32).unwrap();
        let built = StoreIndex::build(&store);
        built.persist(&store).unwrap();
        let loaded = StoreIndex::load(&store).expect("persisted index loads");
        assert_eq!(
            built.generation(),
            loaded.generation(),
            "rebuilt and loaded indexes over the same store must agree"
        );
        // A new artifact changes the generation...
        let k2 = ArtifactKey::new("k").field("a", 2);
        store.save(&k2, &2u32).unwrap();
        let grown = StoreIndex::build(&store);
        assert_ne!(built.generation(), grown.generation());
        // ...and removing it restores the original stamp exactly.
        fs::remove_file(store.artifact_path(&k2)).unwrap();
        assert_eq!(StoreIndex::build(&store).generation(), built.generation());
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn tampered_generation_stamp_forces_a_rebuild() {
        let store = temp_store("tamper");
        let k1 = ArtifactKey::new("k").field("a", 1);
        store.save(&k1, &1u32).unwrap();
        StoreIndex::build(&store).persist(&store).unwrap();
        let path = StoreIndex::file_path(&store);
        let text = fs::read_to_string(&path).unwrap();
        let real = StoreIndex::load(&store).unwrap().generation().to_string();
        fs::write(&path, text.replace(&real, &"0".repeat(real.len()))).unwrap();
        assert!(
            StoreIndex::load(&store).is_none(),
            "a stamp that contradicts the entries is treated as corrupt"
        );
        assert_eq!(StoreIndex::load_or_rebuild(&store).len(), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn persisted_index_equals_rebuilt_index() {
        let store = temp_store("equal");
        for i in 0..5 {
            let k = ArtifactKey::new("models/demo").field("i", i);
            store.save(&k, &vec![i]).unwrap();
        }
        let built = StoreIndex::build(&store);
        built.persist(&store).unwrap();
        let loaded = StoreIndex::load(&store).expect("persisted index loads");
        assert_eq!(built.entries(), loaded.entries());
        fs::remove_dir_all(store.root()).ok();
    }
}
