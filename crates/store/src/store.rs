//! The on-disk store: atomic writes, corruption detection, force-rebuild
//! and verify modes, and hit/miss accounting.

use crate::hash::sha256_hex;
use crate::key::ArtifactKey;
use crate::SCHEMA_VERSION;
use serde::{Deserialize, Serialize};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Environment variable naming the store directory (empty/unset = disabled).
pub const STORE_ENV_VAR: &str = "PNP_STORE";
/// Environment variable enabling force-rebuild (`1` = ignore cached
/// artifacts, recompute and overwrite).
pub const FORCE_ENV_VAR: &str = "PNP_STORE_FORCE";
/// Environment variable enabling verify mode (`1` = on every hit, recompute
/// anyway and check the cached bytes are byte-identical).
pub const VERIFY_ENV_VAR: &str = "PNP_STORE_VERIFY";

/// Distinguishes concurrent writers' temp files within one process.
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Hit/miss accounting, readable at any point (e.g. for end-of-run logs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreStats {
    /// Artifacts served from the store.
    pub hits: usize,
    /// Lookups that found no artifact file.
    pub misses: usize,
    /// Artifact files rejected as corrupt/truncated/mismatched (each also
    /// counts as a miss for the caller, who falls back to rebuilding).
    pub corrupt: usize,
    /// Artifacts written.
    pub writes: usize,
    /// Verify-mode comparisons that confirmed byte-identity.
    pub verified: usize,
    /// Verify-mode comparisons that found the cached bytes differ from the
    /// freshly computed bytes — a broken key contract (DESIGN.md §12).
    pub verify_mismatches: usize,
}

/// First line of every artifact file; the payload bytes follow the newline.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub(crate) struct ArtifactHeader {
    /// File-format magic (`"pnp-store"`).
    pub(crate) magic: String,
    /// Store schema version the artifact was written under.
    pub(crate) schema: u32,
    /// Artifact family.
    pub(crate) kind: String,
    /// Full canonical key, kept readable for debugging and compared verbatim
    /// on load (defends the address against the astronomically unlikely — and
    /// the mundane: a stale file renamed into place by hand).
    pub(crate) key: String,
    /// Payload length in bytes.
    pub(crate) payload_len: usize,
    /// SHA-256 of the payload bytes.
    pub(crate) payload_sha256: String,
}

const MAGIC: &str = "pnp-store";

impl ArtifactHeader {
    /// Reads and validates just the header line of an artifact file, without
    /// touching the payload. The store index is built from these, so an
    /// index rebuild over thousands of artifacts stays cheap even when the
    /// payloads are megabytes of trained weights.
    pub(crate) fn read_from(path: &Path) -> Result<ArtifactHeader, String> {
        use std::io::BufRead;
        let file = fs::File::open(path).map_err(|e| format!("open: {e}"))?;
        let mut line = String::new();
        io::BufReader::new(file)
            .read_line(&mut line)
            .map_err(|e| format!("read: {e}"))?;
        let header: ArtifactHeader = serde_json::from_str(line.trim_end_matches('\n'))
            .map_err(|e| format!("bad header: {e}"))?;
        if header.magic != MAGIC {
            return Err(format!("bad magic {:?}", header.magic));
        }
        if header.schema != SCHEMA_VERSION {
            return Err(format!(
                "schema {} != current {}",
                header.schema, SCHEMA_VERSION
            ));
        }
        Ok(header)
    }
}

/// Writes `bytes` to `path` via a unique temp file in the same directory and
/// an atomic `rename`, creating parent directories as needed. Shared by
/// artifact writes and the store index, so every on-disk publish has the
/// same crash/concurrency story: readers see the old file or the new one,
/// never a truncated in-between.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().expect("target path has a parent");
    fs::create_dir_all(dir)?;
    let name = path.file_name().expect("target path has a file name");
    let tmp = dir.join(format!(
        ".tmp-{}-{}-{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        name.to_string_lossy()
    ));
    fs::write(&tmp, bytes)?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })
}

/// A content-addressed artifact store rooted at a directory.
///
/// Layout: `<root>/v<schema>/<kind>/<address>.json`, where `address` is the
/// SHA-256 of the key's canonical form. Every file is a one-line JSON header
/// (schema, kind, canonical key, payload length + SHA-256) followed by the
/// payload bytes — the exact `serde_json::to_string` output of the artifact,
/// so cached bytes can be compared byte-for-byte against fresh computations.
///
/// Writes go to a unique temp file in the destination directory and are
/// published with an atomic `rename`, so concurrent writers to the same key
/// are safe (last one wins; readers only ever see complete files) and a
/// crash mid-write leaves at most a stray `.tmp-*` file, never a truncated
/// artifact under the real name. Loads verify the header, the payload
/// length, and the payload hash; anything off is treated as a miss (rebuild)
/// rather than an error.
///
/// ```
/// use pnp_store::{ArtifactKey, Store};
///
/// let root = std::env::temp_dir().join(format!("pnp-store-doc-{}", std::process::id()));
/// let store = Store::open(&root);
/// let key = ArtifactKey::new("doc/example").field("n", 3);
///
/// // First call computes and caches; the second is served from disk.
/// let built: Vec<u64> = store.load_or_build(&key, || vec![1, 2, 3]);
/// let cached: Vec<u64> = store.load_or_build(&key, || unreachable!("cached"));
/// assert_eq!(built, cached);
/// assert_eq!(store.stats().hits, 1);
/// assert_eq!(store.stats().writes, 1);
/// # std::fs::remove_dir_all(&root).ok();
/// ```
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    force_rebuild: bool,
    verify: bool,
    stats: Mutex<StoreStats>,
}

impl Store {
    /// Opens (or lazily creates on first write) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Store {
        Store {
            root: root.into(),
            force_rebuild: false,
            verify: false,
            stats: Mutex::new(StoreStats::default()),
        }
    }

    /// Opens the store named by `PNP_STORE`, honouring `PNP_STORE_FORCE` and
    /// `PNP_STORE_VERIFY`. Returns `None` when the variable is unset or
    /// empty (store disabled).
    pub fn from_env() -> Option<Store> {
        let dir = std::env::var(STORE_ENV_VAR).ok()?;
        if dir.trim().is_empty() {
            return None;
        }
        Some(Store::open(dir).with_env_modes())
    }

    /// ORs the `PNP_STORE_FORCE` / `PNP_STORE_VERIFY` environment modes onto
    /// this store — the single definition of those variables' semantics,
    /// used both by [`Store::from_env`] and by CLIs that resolved the store
    /// directory themselves (e.g. from a `--store` flag).
    pub fn with_env_modes(self) -> Store {
        let flag = |var: &str| std::env::var(var).map(|v| v == "1").unwrap_or(false);
        let force = self.force_rebuild || flag(FORCE_ENV_VAR);
        let verify = self.verify || flag(VERIFY_ENV_VAR);
        self.with_force_rebuild(force).with_verify(verify)
    }

    /// Sets force-rebuild mode: every `load` misses, every build overwrites.
    pub fn with_force_rebuild(mut self, force: bool) -> Store {
        self.force_rebuild = force;
        self
    }

    /// Sets verify mode: callers should recompute on every hit and call
    /// [`Store::record_verify`] with the byte-comparison outcome.
    pub fn with_verify(mut self, verify: bool) -> Store {
        self.verify = verify;
        self
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// True when cached artifacts must be ignored and overwritten.
    pub fn force_rebuild(&self) -> bool {
        self.force_rebuild
    }

    /// True when hits should be re-computed and byte-compared.
    pub fn verify(&self) -> bool {
        self.verify
    }

    /// A snapshot of the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        *self.stats.lock().expect("store stats lock")
    }

    /// Where an artifact for `key` lives (whether or not it exists yet).
    pub fn artifact_path(&self, key: &ArtifactKey) -> PathBuf {
        let mut path = self.root.join(format!("v{SCHEMA_VERSION}"));
        for part in key.kind().split('/') {
            path.push(part);
        }
        path.push(format!("{}.json", key.address()));
        path
    }

    fn bump(&self, f: impl FnOnce(&mut StoreStats)) {
        f(&mut self.stats.lock().expect("store stats lock"));
    }

    /// Records the outcome of a verify-mode byte comparison.
    pub fn record_verify(&self, identical: bool) {
        self.bump(|s| {
            if identical {
                s.verified += 1;
            } else {
                s.verify_mismatches += 1;
            }
        });
    }

    /// Loads the raw payload bytes for `key`, or `None` on a miss. A present
    /// but unreadable/corrupt/mismatched file is logged, counted in
    /// [`StoreStats::corrupt`], and reported as a miss — the caller falls
    /// back to rebuilding (and its save will overwrite the bad file).
    /// Force-rebuild mode misses unconditionally.
    pub fn load_bytes(&self, key: &ArtifactKey) -> Option<Vec<u8>> {
        if self.force_rebuild {
            self.bump(|s| s.misses += 1);
            return None;
        }
        let path = self.artifact_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(_) => {
                self.bump(|s| s.misses += 1);
                return None;
            }
        };
        match self.decode(key, &bytes) {
            Ok(payload) => {
                self.bump(|s| s.hits += 1);
                Some(payload)
            }
            Err(why) => {
                eprintln!(
                    "[pnp-store] corrupt artifact {} ({why}); rebuilding",
                    path.display()
                );
                self.bump(|s| {
                    s.corrupt += 1;
                    s.misses += 1;
                });
                None
            }
        }
    }

    /// Validates an artifact file's header and payload against `key`.
    fn decode(&self, key: &ArtifactKey, bytes: &[u8]) -> Result<Vec<u8>, String> {
        let newline = bytes
            .iter()
            .position(|&b| b == b'\n')
            .ok_or("no header line")?;
        let header_text =
            std::str::from_utf8(&bytes[..newline]).map_err(|_| "header is not UTF-8")?;
        let header: ArtifactHeader =
            serde_json::from_str(header_text).map_err(|e| format!("bad header: {e}"))?;
        if header.magic != MAGIC {
            return Err(format!("bad magic {:?}", header.magic));
        }
        if header.schema != SCHEMA_VERSION {
            return Err(format!(
                "schema {} != current {}",
                header.schema, SCHEMA_VERSION
            ));
        }
        if header.kind != key.kind() || header.key != key.canonical() {
            return Err("key does not match the requested artifact".into());
        }
        let payload = &bytes[newline + 1..];
        if payload.len() != header.payload_len {
            return Err(format!(
                "truncated payload: {} bytes, header says {}",
                payload.len(),
                header.payload_len
            ));
        }
        let sha = sha256_hex(payload);
        if sha != header.payload_sha256 {
            return Err("payload hash mismatch".into());
        }
        Ok(payload.to_vec())
    }

    /// Writes `payload` for `key` atomically (temp file in the destination
    /// directory, then `rename`) and returns the artifact path.
    pub fn save_bytes(&self, key: &ArtifactKey, payload: &[u8]) -> io::Result<PathBuf> {
        let path = self.artifact_path(key);
        let header = ArtifactHeader {
            magic: MAGIC.into(),
            schema: SCHEMA_VERSION,
            kind: key.kind().to_string(),
            key: key.canonical(),
            payload_len: payload.len(),
            payload_sha256: sha256_hex(payload),
        };
        let header_json = serde_json::to_string(&header)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let mut bytes = Vec::with_capacity(header_json.len() + 1 + payload.len());
        bytes.extend_from_slice(header_json.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(payload);
        write_atomic(&path, &bytes)?;
        self.bump(|s| s.writes += 1);
        Ok(path)
    }

    /// Loads and deserializes an artifact. Corrupt files and deserialization
    /// failures count as misses (with a log line) so callers always have the
    /// rebuild fallback.
    pub fn load<T: Deserialize>(&self, key: &ArtifactKey) -> Option<T> {
        let bytes = self.load_bytes(key)?;
        let reclass_corrupt = |why: String| {
            eprintln!(
                "[pnp-store] artifact {} {why}; rebuilding",
                self.artifact_path(key).display()
            );
            self.bump(|s| {
                s.corrupt += 1;
                // The earlier load_bytes counted a hit; re-class it.
                s.hits -= 1;
                s.misses += 1;
            });
        };
        let Ok(text) = String::from_utf8(bytes) else {
            reclass_corrupt("is not UTF-8".to_string());
            return None;
        };
        match serde_json::from_str(&text) {
            Ok(value) => Some(value),
            Err(e) => {
                reclass_corrupt(format!("does not deserialize ({e})"));
                None
            }
        }
    }

    /// Serializes and writes an artifact.
    pub fn save<T: Serialize>(&self, key: &ArtifactKey, value: &T) -> io::Result<PathBuf> {
        let json = serde_json::to_string(value)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.save_bytes(key, json.as_bytes())
    }

    /// The workhorse: returns the cached artifact for `key`, or computes it
    /// with `build`, saves it, and returns it.
    ///
    /// * Force-rebuild mode skips the lookup and overwrites.
    /// * Verify mode recomputes even on a hit, byte-compares the cached
    ///   payload against the fresh serialization, records the outcome
    ///   ([`StoreStats::verified`] / [`StoreStats::verify_mismatches`]), and
    ///   returns the *fresh* value (overwriting the stale artifact on
    ///   mismatch) so a broken key contract can never propagate stale data.
    /// * Save failures degrade to a log line — the computed value is still
    ///   returned; a read-only store directory must not abort an experiment.
    pub fn load_or_build<T>(&self, key: &ArtifactKey, build: impl FnOnce() -> T) -> T
    where
        T: Serialize + Deserialize,
    {
        if self.force_rebuild {
            self.bump(|s| s.misses += 1);
        } else if self.verify {
            // Verify mode needs the raw cached bytes for the comparison.
            if let Some(cached) = self.load_bytes(key) {
                let fresh = build();
                let fresh_bytes = serde_json::to_string(&fresh).expect("artifact serializes");
                let identical = fresh_bytes.as_bytes() == cached.as_slice();
                self.record_verify(identical);
                if !identical {
                    eprintln!(
                        "[pnp-store] VERIFY MISMATCH for {} {} — cached bytes differ from \
                         a fresh computation; overwriting (the key is missing an input, \
                         or the code changed without a schema bump — see DESIGN.md §12)",
                        key.kind(),
                        key.address()
                    );
                    self.save_failsafe(key, fresh_bytes.as_bytes());
                }
                return fresh;
            }
        } else if let Some(value) = self.load(key) {
            // `load` owns the deserialize-or-corrupt accounting.
            return value;
        }
        let value = build();
        if let Ok(json) = serde_json::to_string(&value) {
            self.save_failsafe(key, json.as_bytes());
        }
        value
    }

    /// [`Store::load_or_build`] for artifacts that are *not* bit-
    /// deterministic (e.g. wall-clock measurements): verify mode is ignored
    /// for them, since a re-measurement legitimately differs byte-for-byte.
    /// Force-rebuild still applies.
    pub fn load_or_build_nondeterministic<T>(
        &self,
        key: &ArtifactKey,
        build: impl FnOnce() -> T,
    ) -> T
    where
        T: Serialize + Deserialize,
    {
        if !self.force_rebuild {
            if let Some(value) = self.load(key) {
                return value;
            }
        } else {
            self.bump(|s| s.misses += 1);
        }
        let value = build();
        if let Ok(json) = serde_json::to_string(&value) {
            self.save_failsafe(key, json.as_bytes());
        }
        value
    }

    fn save_failsafe(&self, key: &ArtifactKey, payload: &[u8]) {
        if let Err(e) = self.save_bytes(key, payload) {
            eprintln!(
                "[pnp-store] could not write {} ({e}); continuing without caching",
                self.artifact_path(key).display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!(
            "pnp_store_test_{tag}_{}_{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        Store::open(dir)
    }

    fn key() -> ArtifactKey {
        ArtifactKey::new("test/thing").field("a", 1)
    }

    #[test]
    fn roundtrip_bytes_are_exact() {
        let store = temp_store("roundtrip");
        let payload = br#"{"x":[1.5,2.25],"name":"r0"}"#;
        assert!(store.load_bytes(&key()).is_none());
        store.save_bytes(&key(), payload).unwrap();
        assert_eq!(store.load_bytes(&key()).unwrap(), payload);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt), (1, 1, 1, 0));
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn truncated_artifact_is_a_corrupt_miss() {
        let store = temp_store("truncated");
        store.save_bytes(&key(), b"0123456789").unwrap();
        let path = store.artifact_path(&key());
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(store.load_bytes(&key()).is_none());
        assert_eq!(store.stats().corrupt, 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn flipped_payload_byte_is_a_corrupt_miss() {
        let store = temp_store("flipped");
        store.save_bytes(&key(), b"0123456789").unwrap();
        let path = store.artifact_path(&key());
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load_bytes(&key()).is_none());
        assert_eq!(store.stats().corrupt, 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn garbage_file_is_a_corrupt_miss() {
        let store = temp_store("garbage");
        let path = store.artifact_path(&key());
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, b"not an artifact at all").unwrap();
        assert!(store.load_bytes(&key()).is_none());
        assert_eq!(store.stats().corrupt, 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn different_keys_do_not_collide() {
        let store = temp_store("keys");
        let k1 = ArtifactKey::new("test/thing").field("epochs", 14);
        let k2 = ArtifactKey::new("test/thing").field("epochs", 15);
        store.save_bytes(&k1, b"fourteen").unwrap();
        assert!(store.load_bytes(&k2).is_none(), "changed field must miss");
        assert_eq!(store.load_bytes(&k1).unwrap(), b"fourteen");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn force_rebuild_misses_and_overwrites() {
        let store = temp_store("force");
        store.save_bytes(&key(), b"old").unwrap();
        let forced = Store::open(store.root()).with_force_rebuild(true);
        assert!(forced.load_bytes(&key()).is_none());
        let built = forced.load_or_build(&key(), || "new".to_string());
        assert_eq!(built, "new");
        // A plain store now sees the overwritten value.
        let plain = Store::open(store.root());
        assert_eq!(plain.load::<String>(&key()).unwrap(), "new");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn load_or_build_builds_once_then_hits() {
        let store = temp_store("lob");
        let calls = AtomicUsize::new(0);
        let build = || {
            calls.fetch_add(1, Ordering::Relaxed);
            vec![1.5f64, 2.5]
        };
        let first = store.load_or_build(&key(), build);
        let second = store.load_or_build(&key(), build);
        assert_eq!(first, second);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn verify_mode_confirms_identity_and_flags_drift() {
        let store = temp_store("verify");
        store.load_or_build(&key(), || vec![1u32, 2, 3]);
        let verifying = Store::open(store.root()).with_verify(true);
        let same = verifying.load_or_build(&key(), || vec![1u32, 2, 3]);
        assert_eq!(same, vec![1, 2, 3]);
        assert_eq!(verifying.stats().verified, 1);
        assert_eq!(verifying.stats().verify_mismatches, 0);
        // A "computation" that yields different bytes under the same key is
        // a broken contract: flagged, and the fresh value wins.
        let drifted = verifying.load_or_build(&key(), || vec![9u32]);
        assert_eq!(drifted, vec![9]);
        assert_eq!(verifying.stats().verify_mismatches, 1);
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn concurrent_writers_to_one_key_leave_a_valid_artifact() {
        let store = temp_store("concurrent");
        let store = std::sync::Arc::new(store);
        let mut handles = Vec::new();
        for w in 0..8u8 {
            let store = store.clone();
            handles.push(std::thread::spawn(move || {
                let payload = vec![w; 1000];
                for _ in 0..20 {
                    store.save_bytes(&key(), &payload).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Whichever writer won, the artifact must be complete and verifiable.
        let bytes = store.load_bytes(&key()).expect("valid artifact");
        assert_eq!(bytes.len(), 1000);
        assert!(bytes.iter().all(|&b| b == bytes[0]));
        assert_eq!(store.stats().corrupt, 0);
        // No temp litter left behind.
        let dir = store.artifact_path(&key());
        let litter: Vec<_> = fs::read_dir(dir.parent().unwrap())
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(litter.is_empty(), "temp files left: {litter:?}");
        fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn from_env_respects_disable_and_flags() {
        // Can't mutate the real environment safely in parallel tests for the
        // positive case; at least pin down the canonical layout.
        let store = Store::open("/tmp/x")
            .with_force_rebuild(true)
            .with_verify(true);
        assert!(store.force_rebuild() && store.verify());
        let path = store.artifact_path(&key());
        let rel = path.strip_prefix("/tmp/x").unwrap();
        let mut parts = rel.components();
        assert_eq!(
            parts.next().unwrap().as_os_str().to_string_lossy(),
            format!("v{SCHEMA_VERSION}")
        );
        assert_eq!(parts.next().unwrap().as_os_str().to_string_lossy(), "test");
        assert_eq!(parts.next().unwrap().as_os_str().to_string_lossy(), "thing");
    }
}
