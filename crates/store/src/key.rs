//! Artifact keys: everything that determines an artifact's bytes, folded
//! into one canonical string and content-addressed with SHA-256.

use crate::hash::sha256_hex;
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt;

/// The identity of one cached artifact.
///
/// A key is a `kind` (the artifact family, e.g. `"dataset"` or
/// `"models/scenario1"`) plus a set of named fields covering *everything that
/// determines the artifact's bytes*: suite and application list, machine
/// fingerprint, search-space fingerprint, training hyperparameters, seed
/// scheme, and the store schema version (DESIGN.md §12 defines the contract
/// per artifact kind). Fields are kept sorted, so the canonical form — and
/// therefore the address — does not depend on insertion order.
///
/// Worker-count knobs (`PNP_SWEEP_THREADS`, `PNP_TRAIN_THREADS`,
/// `PNP_MATMUL_THREADS`) are deliberately *not* key fields: PRs 2–3 made
/// every pipeline bit-identical across worker counts, which is exactly what
/// makes their outputs cacheable at all.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactKey {
    kind: String,
    fields: BTreeMap<String, String>,
}

impl ArtifactKey {
    /// Starts a key for an artifact family. `kind` may use `/` to group
    /// related families (it becomes a directory level in the store layout).
    pub fn new(kind: &str) -> Self {
        ArtifactKey {
            kind: kind.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds one key field (builder style). Re-adding a name overwrites it.
    pub fn field(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.fields.insert(name.to_string(), value.to_string());
        self
    }

    /// The artifact family.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The canonical string form the address is hashed from:
    /// `kind|schema=N|name=value|...` with fields in sorted order. Field
    /// names and values have the structural characters (`|`, `=`, newlines,
    /// the escape character itself) escaped, so distinct field sets cannot
    /// collide on the same canonical string.
    pub fn canonical(&self) -> String {
        let esc = |s: &str| {
            s.replace('\\', "\\\\")
                .replace('|', "\\p")
                .replace('=', "\\q")
                .replace('\n', "\\n")
        };
        let mut out = format!("{}|schema={}", esc(&self.kind), SCHEMA_VERSION);
        for (name, value) in &self.fields {
            out.push('|');
            out.push_str(&esc(name));
            out.push('=');
            out.push_str(&esc(value));
        }
        out
    }

    /// The content address: SHA-256 of the canonical form, as lowercase hex.
    pub fn address(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_does_not_change_the_address() {
        let a = ArtifactKey::new("dataset").field("x", 1).field("y", "b");
        let b = ArtifactKey::new("dataset").field("y", "b").field("x", 1);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.address(), b.address());
    }

    #[test]
    fn any_field_change_changes_the_address() {
        let base = ArtifactKey::new("models/scenario1")
            .field("epochs", 14)
            .field("hidden", 16);
        let epochs = ArtifactKey::new("models/scenario1")
            .field("epochs", 15)
            .field("hidden", 16);
        let kind = ArtifactKey::new("models/scenario2")
            .field("epochs", 14)
            .field("hidden", 16);
        assert_ne!(base.address(), epochs.address());
        assert_ne!(base.address(), kind.address());
    }

    #[test]
    fn canonical_escaping_prevents_field_collisions() {
        // Without escaping these two would render identically.
        let a = ArtifactKey::new("k").field("a", "1|b=2");
        let b = ArtifactKey::new("k").field("a", "1").field("b", "2");
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.address(), b.address());
        // `=` must be escaped too: a name containing it cannot alias a
        // value containing it.
        let c = ArtifactKey::new("k").field("a=b", "c");
        let d = ArtifactKey::new("k").field("a", "b=c");
        assert_ne!(c.canonical(), d.canonical());
        assert_ne!(c.address(), d.address());
        // And the escape character itself round-trips unambiguously.
        let e = ArtifactKey::new("k").field("a", "\\q");
        let f = ArtifactKey::new("k").field("a", "=");
        assert_ne!(e.canonical(), f.canonical());
    }

    #[test]
    fn address_is_hex_sha256() {
        let addr = ArtifactKey::new("dataset").address();
        assert_eq!(addr.len(), 64);
        assert!(addr.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
