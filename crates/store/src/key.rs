//! Artifact keys: everything that determines an artifact's bytes, folded
//! into one canonical string and content-addressed with SHA-256.

use crate::hash::sha256_hex;
use crate::SCHEMA_VERSION;
use std::collections::BTreeMap;
use std::fmt;

/// The identity of one cached artifact.
///
/// A key is a `kind` (the artifact family, e.g. `"dataset"` or
/// `"models/scenario1"`) plus a set of named fields covering *everything that
/// determines the artifact's bytes*: suite and application list, machine
/// fingerprint, search-space fingerprint, training hyperparameters, seed
/// scheme, and the store schema version (DESIGN.md §12 defines the contract
/// per artifact kind). Fields are kept sorted, so the canonical form — and
/// therefore the address — does not depend on insertion order.
///
/// Worker-count knobs (`PNP_SWEEP_THREADS`, `PNP_TRAIN_THREADS`,
/// `PNP_MATMUL_THREADS`) are deliberately *not* key fields: PRs 2–3 made
/// every pipeline bit-identical across worker counts, which is exactly what
/// makes their outputs cacheable at all.
///
/// ```
/// use pnp_store::ArtifactKey;
///
/// let key = ArtifactKey::new("models/scenario1")
///     .field("epochs", 14)
///     .field("dynamic", false);
///
/// // Field insertion order never changes the identity.
/// let same = ArtifactKey::new("models/scenario1")
///     .field("dynamic", false)
///     .field("epochs", 14);
/// assert_eq!(key.address(), same.address());
///
/// // The canonical form round-trips through `parse`, which is what the
/// // model registry uses to recover a key from a stored artifact header.
/// let parsed = ArtifactKey::parse(&key.canonical()).unwrap();
/// assert_eq!(parsed, key);
/// assert_eq!(parsed.get("epochs"), Some("14"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactKey {
    kind: String,
    fields: BTreeMap<String, String>,
}

impl ArtifactKey {
    /// Starts a key for an artifact family. `kind` may use `/` to group
    /// related families (it becomes a directory level in the store layout).
    pub fn new(kind: &str) -> Self {
        ArtifactKey {
            kind: kind.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Adds one key field (builder style). Re-adding a name overwrites it.
    pub fn field(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.fields.insert(name.to_string(), value.to_string());
        self
    }

    /// The artifact family.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// One field's value, or `None` when the field is absent.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields.get(name).map(String::as_str)
    }

    /// The key's fields, in sorted (canonical) order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &str)> {
        self.fields.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// The canonical string form the address is hashed from:
    /// `kind|schema=N|name=value|...` with fields in sorted order. Field
    /// names and values have the structural characters (`|`, `=`, newlines,
    /// the escape character itself) escaped, so distinct field sets cannot
    /// collide on the same canonical string.
    pub fn canonical(&self) -> String {
        let esc = |s: &str| {
            s.replace('\\', "\\\\")
                .replace('|', "\\p")
                .replace('=', "\\q")
                .replace('\n', "\\n")
        };
        let mut out = format!("{}|schema={}", esc(&self.kind), SCHEMA_VERSION);
        for (name, value) in &self.fields {
            out.push('|');
            out.push_str(&esc(name));
            out.push('=');
            out.push_str(&esc(value));
        }
        out
    }

    /// The content address: SHA-256 of the canonical form, as lowercase hex.
    pub fn address(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }

    /// Parses a canonical string back into a key — the inverse of
    /// [`ArtifactKey::canonical`].
    ///
    /// The escaping makes every literal `|` a field separator and every
    /// literal `=` a name/value separator, so the canonical form is uniquely
    /// decodable: `parse(key.canonical()) == Ok(key)` for every key
    /// (property-tested in `tests/key_properties.rs`). The store index and
    /// the model registry use this to recover the full key identity from an
    /// artifact header without re-deriving any fingerprint.
    ///
    /// Errors name what is malformed: a bad escape, a missing or foreign
    /// `schema=N` segment (keys from another [`SCHEMA_VERSION`] are rejected,
    /// mirroring the store's on-disk versioning), or a field segment without
    /// a separator.
    pub fn parse(canonical: &str) -> Result<ArtifactKey, String> {
        let mut segments = canonical.split('|');
        let kind = unescape(segments.next().unwrap_or_default())?;
        let schema = segments.next().ok_or("missing schema segment")?;
        if schema != format!("schema={SCHEMA_VERSION}") {
            return Err(format!(
                "unexpected schema segment {schema:?} (this build reads schema {SCHEMA_VERSION})"
            ));
        }
        let mut fields = BTreeMap::new();
        for segment in segments {
            let (name, value) = segment
                .split_once('=')
                .ok_or_else(|| format!("field segment {segment:?} has no `=`"))?;
            if value.contains('=') {
                // Exactly one literal `=` per segment; a second means an
                // unescaped `=` leaked through (not our canonical form).
                return Err(format!("field segment {segment:?} has multiple `=`"));
            }
            fields.insert(unescape(name)?, unescape(value)?);
        }
        Ok(ArtifactKey { kind, fields })
    }
}

/// Inverts the canonical escaping: `\\` → `\`, `\p` → `|`, `\q` → `=`,
/// `\n` → newline. Any other escape (or a trailing `\`) is a parse error —
/// the canonical form never produces one.
fn unescape(s: &str) -> Result<String, String> {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('p') => out.push('|'),
            Some('q') => out.push('='),
            Some('n') => out.push('\n'),
            other => return Err(format!("bad escape {other:?} in {s:?}")),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_order_does_not_change_the_address() {
        let a = ArtifactKey::new("dataset").field("x", 1).field("y", "b");
        let b = ArtifactKey::new("dataset").field("y", "b").field("x", 1);
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.address(), b.address());
    }

    #[test]
    fn any_field_change_changes_the_address() {
        let base = ArtifactKey::new("models/scenario1")
            .field("epochs", 14)
            .field("hidden", 16);
        let epochs = ArtifactKey::new("models/scenario1")
            .field("epochs", 15)
            .field("hidden", 16);
        let kind = ArtifactKey::new("models/scenario2")
            .field("epochs", 14)
            .field("hidden", 16);
        assert_ne!(base.address(), epochs.address());
        assert_ne!(base.address(), kind.address());
    }

    #[test]
    fn canonical_escaping_prevents_field_collisions() {
        // Without escaping these two would render identically.
        let a = ArtifactKey::new("k").field("a", "1|b=2");
        let b = ArtifactKey::new("k").field("a", "1").field("b", "2");
        assert_ne!(a.canonical(), b.canonical());
        assert_ne!(a.address(), b.address());
        // `=` must be escaped too: a name containing it cannot alias a
        // value containing it.
        let c = ArtifactKey::new("k").field("a=b", "c");
        let d = ArtifactKey::new("k").field("a", "b=c");
        assert_ne!(c.canonical(), d.canonical());
        assert_ne!(c.address(), d.address());
        // And the escape character itself round-trips unambiguously.
        let e = ArtifactKey::new("k").field("a", "\\q");
        let f = ArtifactKey::new("k").field("a", "=");
        assert_ne!(e.canonical(), f.canonical());
    }

    #[test]
    fn address_is_hex_sha256() {
        let addr = ArtifactKey::new("dataset").address();
        assert_eq!(addr.len(), 64);
        assert!(addr.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn parse_inverts_canonical_including_structural_characters() {
        let key = ArtifactKey::new("models/scenario1")
            .field("a|b", "1=2")
            .field("nl", "x\ny")
            .field("esc", "\\p");
        let parsed = ArtifactKey::parse(&key.canonical()).unwrap();
        assert_eq!(parsed, key);
        assert_eq!(parsed.get("a|b"), Some("1=2"));
        assert_eq!(parsed.get("nl"), Some("x\ny"));
        assert_eq!(parsed.get("esc"), Some("\\p"));
        assert_eq!(parsed.address(), key.address());
    }

    #[test]
    fn parse_rejects_malformed_and_foreign_schema_strings() {
        assert!(ArtifactKey::parse("").is_err(), "no schema segment");
        assert!(ArtifactKey::parse("kind").is_err(), "no schema segment");
        let foreign = format!("kind|schema={}", SCHEMA_VERSION + 1);
        assert!(ArtifactKey::parse(&foreign).is_err(), "foreign schema");
        let no_eq = format!("kind|schema={SCHEMA_VERSION}|novalue");
        assert!(ArtifactKey::parse(&no_eq).is_err(), "field without `=`");
        let bad_escape = format!("kind|schema={SCHEMA_VERSION}|a=\\z");
        assert!(ArtifactKey::parse(&bad_escape).is_err(), "unknown escape");
    }

    #[test]
    fn fields_iterates_in_sorted_order() {
        let key = ArtifactKey::new("k").field("z", 1).field("a", 2);
        let names: Vec<&str> = key.fields().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert_eq!(key.get("z"), Some("1"));
        assert_eq!(key.get("missing"), None);
    }
}
