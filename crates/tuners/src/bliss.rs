//! A BLISS-style tuner.
//!
//! BLISS (Roy et al., PLDI 2021) replaces a single heavyweight Bayesian model
//! with a *pool of diverse lightweight models* and picks samples using the
//! pool's disagreement. This implementation keeps that structure under the
//! same sampling budget the paper used (20 executions per code region):
//!
//! 1. an initial space-filling batch is executed;
//! 2. an ensemble of ridge regressors — each trained on a bootstrap resample
//!    with a different regularization strength and feature weighting — models
//!    `score(point)`;
//! 3. the next sample is the unevaluated candidate minimizing a lower
//!    confidence bound (predicted score minus κ × ensemble spread);
//! 4. after the budget is exhausted, the best *observed* point wins.

use crate::evaluator::RegionEvaluator;
use crate::objective::Objective;
use crate::oracle::OracleTuner;
use crate::result::TuningResult;
use crate::space::SearchSpace;
use pnp_tensor::SeededRng;

/// Ridge regression on a small dense feature matrix (normal equations with
/// Gaussian elimination — the feature dimension is 8).
struct Ridge {
    weights: Vec<f64>,
}

impl Ridge {
    fn fit(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Ridge {
        let n = xs.len();
        let d = xs[0].len() + 1; // + bias
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        let row = |x: &Vec<f64>| {
            let mut r = Vec::with_capacity(d);
            r.push(1.0);
            r.extend_from_slice(x);
            r
        };
        for i in 0..n {
            let xi = row(&xs[i]);
            for a in 0..d {
                xty[a] += xi[a] * ys[i];
                for b in 0..d {
                    xtx[a][b] += xi[a] * xi[b];
                }
            }
        }
        for (a, r) in xtx.iter_mut().enumerate() {
            r[a] += lambda;
        }
        // Gaussian elimination with partial pivoting.
        let mut aug = xtx;
        for (a, r) in aug.iter_mut().enumerate() {
            r.push(xty[a]);
        }
        for col in 0..d {
            let pivot = (col..d)
                .max_by(|&a, &b| aug[a][col].abs().total_cmp(&aug[b][col].abs()))
                // pnp-lint: allow(unwrap) — `col..d` is non-empty for every `col < d`
                .unwrap();
            aug.swap(col, pivot);
            let pv = aug[col][col];
            if pv.abs() < 1e-12 {
                continue;
            }
            let (upper, lower) = aug.split_at_mut(col + 1);
            let pivot_row = &upper[col];
            for row in lower.iter_mut() {
                let factor = row[col] / pv;
                for (dst, src) in row.iter_mut().zip(pivot_row.iter()).skip(col) {
                    *dst -= factor * src;
                }
            }
        }
        let mut w = vec![0.0f64; d];
        for r in (0..d).rev() {
            let mut acc = aug[r][d];
            for c in r + 1..d {
                acc -= aug[r][c] * w[c];
            }
            w[r] = if aug[r][r].abs() < 1e-12 {
                0.0
            } else {
                acc / aug[r][r]
            };
        }
        Ridge { weights: w }
    }

    fn predict(&self, x: &[f64]) -> f64 {
        let mut y = self.weights[0];
        for (w, xi) in self.weights[1..].iter().zip(x) {
            y += w * xi;
        }
        y
    }
}

/// The BLISS-style tuner.
pub struct BlissTuner<'a> {
    space: &'a SearchSpace,
    /// Total sampling budget (paper: 20 executions per region).
    pub budget: usize,
    /// Size of the initial space-filling batch.
    pub initial_samples: usize,
    /// Number of lightweight models in the pool.
    pub pool_size: usize,
    seed: u64,
}

impl<'a> BlissTuner<'a> {
    /// Creates a BLISS-style tuner with the paper's 20-run budget.
    pub fn new(space: &'a SearchSpace, seed: u64) -> Self {
        BlissTuner {
            space,
            budget: 20,
            initial_samples: 8,
            pool_size: 6,
            seed,
        }
    }

    /// Overrides the sampling budget (used by the budget-sensitivity
    /// ablation).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(2);
        self.initial_samples = self.initial_samples.min(self.budget / 2).max(1);
        self
    }

    /// Runs the tuner.
    pub fn tune(&self, evaluator: &dyn RegionEvaluator, objective: &Objective) -> TuningResult {
        let mut rng = SeededRng::new(self.seed);
        let candidates = OracleTuner::new(self.space).candidates(objective);
        let features: Vec<Vec<f64>> = candidates
            .iter()
            .map(|p| self.space.point_features(p))
            .collect();

        let mut evaluated: Vec<usize> = Vec::new();
        let mut scores: Vec<f64> = Vec::new();

        // Phase 1: space-filling random batch (stratified over thread counts
        // so the pool sees the main performance cliff).
        let mut initial: Vec<usize> = Vec::new();
        while initial.len() < self.initial_samples.min(candidates.len()) {
            let idx = rng.below(candidates.len());
            if !initial.contains(&idx) {
                initial.push(idx);
            }
        }
        for idx in initial {
            let s = evaluator.evaluate(&candidates[idx]);
            evaluated.push(idx);
            scores.push(objective.score(&s).ln());
        }

        // Phase 2: model-guided sampling.
        while evaluated.len() < self.budget.min(candidates.len()) {
            let xs: Vec<Vec<f64>> = evaluated.iter().map(|&i| features[i].clone()).collect();
            // Pool of lightweight models: bootstrap resamples × different
            // regularization strengths.
            let mut pool = Vec::with_capacity(self.pool_size);
            for m in 0..self.pool_size {
                let lambda = 10f64.powi(m as i32 % 3 - 2);
                let mut bx = Vec::with_capacity(xs.len());
                let mut by = Vec::with_capacity(xs.len());
                for _ in 0..xs.len() {
                    let k = rng.below(xs.len());
                    bx.push(xs[k].clone());
                    by.push(scores[k]);
                }
                pool.push(Ridge::fit(&bx, &by, lambda));
            }
            // Lower-confidence-bound acquisition over unevaluated candidates.
            let kappa = 1.0;
            let mut best_candidate = None;
            let mut best_acq = f64::INFINITY;
            for (i, f) in features.iter().enumerate() {
                if evaluated.contains(&i) {
                    continue;
                }
                let preds: Vec<f64> = pool.iter().map(|m| m.predict(f)).collect();
                let mean = preds.iter().sum::<f64>() / preds.len() as f64;
                let var =
                    preds.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / preds.len() as f64;
                let acq = mean - kappa * var.sqrt();
                if acq < best_acq {
                    best_acq = acq;
                    best_candidate = Some(i);
                }
            }
            let idx = best_candidate.expect("candidates remain");
            let s = evaluator.evaluate(&candidates[idx]);
            evaluated.push(idx);
            scores.push(objective.score(&s).ln());
        }

        // Best observed point wins.
        let (best_pos, _) = scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            // pnp-lint: allow(unwrap) — `scores` holds one entry per tuning round (budget ≥ 1)
            .unwrap();
        let best_idx = evaluated[best_pos];
        let best_sample = evaluator.evaluate(&candidates[best_idx]);
        TuningResult::new(
            "bliss",
            candidates[best_idx],
            best_sample,
            evaluator.evaluations(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::DefaultBaseline;
    use crate::evaluator::SimEvaluator;
    use pnp_machine::haswell;
    use pnp_openmp::RegionProfile;

    #[test]
    fn ridge_recovers_a_linear_function() {
        let xs: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![i as f64 / 40.0, (i % 7) as f64 / 7.0])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x[0] - 1.5 * x[1]).collect();
        let model = Ridge::fit(&xs, &ys, 1e-6);
        for (x, y) in xs.iter().zip(&ys) {
            assert!((model.predict(x) - y).abs() < 1e-3);
        }
    }

    #[test]
    fn bliss_is_bitwise_identical_across_runs() {
        // Pivot selection and final argmin both go through `total_cmp`;
        // two runs from the same seed must agree bit for bit.
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let o = Objective::Edp;
        let run = || {
            let profile = RegionProfile::balanced("r", 45_000);
            BlissTuner::new(&space, 17).tune(&SimEvaluator::new(machine.clone(), profile), &o)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(
            o.score(&a.best_sample).to_bits(),
            o.score(&b.best_sample).to_bits()
        );
    }

    #[test]
    fn bliss_stays_within_budget_and_beats_the_default() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let profile = RegionProfile {
            imbalance: 1.2,
            imbalance_shape: pnp_openmp::ImbalanceShape::Ramp,
            ..RegionProfile::balanced("r", 30_000)
        };
        let o = Objective::TimeAtPower { power_watts: 40.0 };

        let eval = SimEvaluator::new(machine.clone(), profile.clone());
        let result = BlissTuner::new(&space, 3).tune(&eval, &o);
        // budget evaluations + 1 re-evaluation of the winner
        assert!(result.evaluations <= 21, "{}", result.evaluations);

        let eval_b = SimEvaluator::new(machine.clone(), profile);
        let baseline = DefaultBaseline::new(&space, machine.tdp_watts).sample(&eval_b, &o);
        assert!(
            result.best_sample.time_s <= baseline.time_s * 1.05,
            "BLISS ({}) should be at least competitive with the default ({})",
            result.best_sample.time_s,
            baseline.time_s
        );
    }

    #[test]
    fn smaller_budget_is_never_better_in_expectation_here() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let o = Objective::Edp;
        let profile = RegionProfile::balanced("r", 60_000);
        let small = BlissTuner::new(&space, 11)
            .with_budget(5)
            .tune(&SimEvaluator::new(machine.clone(), profile.clone()), &o);
        let large = BlissTuner::new(&space, 11)
            .with_budget(40)
            .tune(&SimEvaluator::new(machine, profile), &o);
        assert!(o.score(&large.best_sample) <= o.score(&small.best_sample) * 1.2);
    }
}
