//! The tuning search space of Table I.

use pnp_machine::MachineSpec;
use pnp_openmp::{default_config, OmpConfig, Schedule};
use serde::{Deserialize, Serialize};

/// The chunk sizes of Table I.
pub const CHUNK_SIZES: [usize; 7] = [1, 8, 32, 64, 128, 256, 512];

/// One point of the joint search space: a power cap plus an OpenMP runtime
/// configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Package power cap in watts.
    pub power_watts: f64,
    /// OpenMP runtime configuration.
    pub omp: OmpConfig,
}

/// The machine-specific search space (Table I).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Power cap levels (4 per machine).
    pub power_levels: Vec<f64>,
    /// Thread counts (6 per machine).
    pub thread_counts: Vec<usize>,
    /// Scheduling policies (3).
    pub schedules: Vec<Schedule>,
    /// Chunk sizes (7).
    pub chunk_sizes: Vec<usize>,
    /// The default OpenMP configuration of the machine (all hardware threads,
    /// static schedule, default chunk).
    pub default_config: OmpConfig,
}

impl SearchSpace {
    /// Builds the Table I search space for a machine.
    pub fn for_machine(machine: &MachineSpec) -> Self {
        SearchSpace {
            power_levels: machine.default_power_levels(),
            thread_counts: machine.default_thread_counts(),
            schedules: Schedule::all().to_vec(),
            chunk_sizes: CHUNK_SIZES.to_vec(),
            default_config: default_config(machine),
        }
    }

    /// Number of OpenMP configurations per power level (6 × 3 × 7 = 126).
    pub fn configs_per_power(&self) -> usize {
        self.thread_counts.len() * self.schedules.len() * self.chunk_sizes.len()
    }

    /// Number of tuned points in the joint space (paper: 504).
    pub fn num_tuned_points(&self) -> usize {
        self.configs_per_power() * self.power_levels.len()
    }

    /// Number of valid points including the default configuration at each
    /// power level (paper: 508).
    pub fn num_valid_points(&self) -> usize {
        self.num_tuned_points() + self.power_levels.len()
    }

    /// Enumerates the OpenMP configurations tuned within one power level, in
    /// a stable order (this order defines the scenario-1 class labels).
    pub fn omp_configs(&self) -> Vec<OmpConfig> {
        let mut v = Vec::with_capacity(self.configs_per_power());
        for &threads in &self.thread_counts {
            for &schedule in &self.schedules {
                for &chunk in &self.chunk_sizes {
                    v.push(OmpConfig::new(threads, schedule, Some(chunk)));
                }
            }
        }
        v
    }

    /// The class index of an OpenMP configuration within a power level, if it
    /// is part of the tuned space.
    pub fn omp_index(&self, config: &OmpConfig) -> Option<usize> {
        let t = self
            .thread_counts
            .iter()
            .position(|&x| x == config.threads)?;
        let s = self.schedules.iter().position(|&x| x == config.schedule)?;
        let c = self
            .chunk_sizes
            .iter()
            .position(|&x| Some(x) == config.chunk)?;
        Some(t * self.schedules.len() * self.chunk_sizes.len() + s * self.chunk_sizes.len() + c)
    }

    /// Enumerates the full joint space (power × OpenMP configuration), in a
    /// stable order (this order defines the scenario-2 / EDP class labels).
    pub fn joint_points(&self) -> Vec<ConfigPoint> {
        let omp = self.omp_configs();
        let mut v = Vec::with_capacity(self.num_tuned_points());
        for &power in &self.power_levels {
            for config in &omp {
                v.push(ConfigPoint {
                    power_watts: power,
                    omp: *config,
                });
            }
        }
        v
    }

    /// The joint-space class index of `(power level index, OpenMP class index)`.
    pub fn joint_index(&self, power_idx: usize, omp_idx: usize) -> usize {
        power_idx * self.configs_per_power() + omp_idx
    }

    /// Decodes a joint-space class index back into a [`ConfigPoint`].
    pub fn decode_joint(&self, class: usize) -> ConfigPoint {
        let per = self.configs_per_power();
        let power_idx = class / per;
        let omp_idx = class % per;
        ConfigPoint {
            power_watts: self.power_levels[power_idx],
            omp: self.omp_configs()[omp_idx],
        }
    }

    /// Normalized feature vector of a point, used by the surrogate models of
    /// the BLISS-style tuner: [threads/max, log2(threads)/log2(max),
    /// schedule one-hot ×3, log2(chunk)/log2(max chunk), power/TDP].
    pub fn point_features(&self, point: &ConfigPoint) -> Vec<f64> {
        let max_threads = *self.thread_counts.iter().max().unwrap() as f64;
        let max_chunk = *self.chunk_sizes.iter().max().unwrap() as f64;
        let max_power = self.power_levels.iter().cloned().fold(1.0, f64::max);
        let chunk = point.omp.chunk.unwrap_or(1) as f64;
        let mut f = vec![
            point.omp.threads as f64 / max_threads,
            (point.omp.threads as f64).log2() / max_threads.log2(),
            0.0,
            0.0,
            0.0,
            chunk.log2() / max_chunk.log2().max(1.0),
            point.power_watts / max_power,
        ];
        f[2 + match point.omp.schedule {
            Schedule::Static => 0,
            Schedule::Dynamic => 1,
            Schedule::Guided => 2,
        }] = 1.0;
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::{haswell, skylake};

    #[test]
    fn space_sizes_match_table_one() {
        for machine in [haswell(), skylake()] {
            let space = SearchSpace::for_machine(&machine);
            assert_eq!(space.configs_per_power(), 126);
            assert_eq!(space.num_tuned_points(), 504);
            assert_eq!(space.num_valid_points(), 508);
            assert_eq!(space.omp_configs().len(), 126);
            assert_eq!(space.joint_points().len(), 504);
        }
    }

    #[test]
    fn omp_index_roundtrips() {
        let space = SearchSpace::for_machine(&haswell());
        for (i, config) in space.omp_configs().iter().enumerate() {
            assert_eq!(space.omp_index(config), Some(i));
        }
        // The default configuration (no explicit chunk) is outside the tuned space.
        assert_eq!(space.omp_index(&space.default_config), None);
    }

    #[test]
    fn joint_index_roundtrips() {
        let space = SearchSpace::for_machine(&skylake());
        let points = space.joint_points();
        for (class, point) in points.iter().enumerate() {
            let decoded = space.decode_joint(class);
            assert_eq!(&decoded, point);
        }
        assert_eq!(space.joint_index(2, 10), 2 * 126 + 10);
    }

    #[test]
    fn features_are_bounded_and_distinct() {
        let space = SearchSpace::for_machine(&haswell());
        let points = space.joint_points();
        let f0 = space.point_features(&points[0]);
        assert_eq!(f0.len(), 7);
        for p in points.iter().step_by(37) {
            let f = space.point_features(p);
            assert!(f.iter().all(|x| (-0.01..=1.01).contains(x)), "{f:?}");
        }
        let f_last = space.point_features(points.last().unwrap());
        assert_ne!(f0, f_last);
    }
}
