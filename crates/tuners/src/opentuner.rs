//! An OpenTuner-style search tuner.
//!
//! OpenTuner (Ansel et al., PACT 2014) runs an ensemble of search techniques
//! (hill climbers, pattern search, random) coordinated by an AUC-bandit
//! meta-technique that gives more trials to whichever technique has recently
//! produced improvements. This implementation reproduces that structure over
//! the Table I space, with a wall-budget expressed in region executions
//! (standing in for the paper's `--stop-after` seconds flag).

use crate::evaluator::RegionEvaluator;
use crate::objective::Objective;
use crate::oracle::OracleTuner;
use crate::result::TuningResult;
use crate::space::{ConfigPoint, SearchSpace};
use pnp_openmp::{OmpConfig, Schedule};
use pnp_tensor::SeededRng;

/// The search operators driven by the bandit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Technique {
    /// Uniform random candidate.
    Random,
    /// Mutate one dimension of the current best.
    HillClimb,
    /// Move the thread count one step (the dominant dimension).
    PatternStep,
}

const TECHNIQUES: [Technique; 3] = [
    Technique::Random,
    Technique::HillClimb,
    Technique::PatternStep,
];

/// OpenTuner-style bandit meta-search.
pub struct OpenTunerLike<'a> {
    space: &'a SearchSpace,
    /// Evaluation budget (the stand-in for `--stop-after`).
    pub budget: usize,
    seed: u64,
}

impl<'a> OpenTunerLike<'a> {
    /// Creates the tuner with the default budget of 60 evaluations.
    pub fn new(space: &'a SearchSpace, seed: u64) -> Self {
        OpenTunerLike {
            space,
            budget: 60,
            seed,
        }
    }

    /// Overrides the evaluation budget.
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget.max(2);
        self
    }

    fn mutate(&self, rng: &mut SeededRng, base: &ConfigPoint, tune_power: bool) -> ConfigPoint {
        let mut threads = base.omp.threads;
        let mut schedule = base.omp.schedule;
        let mut chunk = base.omp.chunk.unwrap_or(1);
        let mut power = base.power_watts;
        let dims = if tune_power { 4 } else { 3 };
        match rng.below(dims) {
            0 => threads = *rng.choose(&self.space.thread_counts),
            1 => schedule = *rng.choose(&self.space.schedules),
            2 => chunk = *rng.choose(&self.space.chunk_sizes),
            _ => power = *rng.choose(&self.space.power_levels),
        }
        ConfigPoint {
            power_watts: power,
            omp: OmpConfig::new(threads, schedule, Some(chunk)),
        }
    }

    fn pattern_step(&self, rng: &mut SeededRng, base: &ConfigPoint) -> ConfigPoint {
        let idx = self
            .space
            .thread_counts
            .iter()
            .position(|&t| t == base.omp.threads)
            .unwrap_or(0);
        let next = if rng.bernoulli(0.5) {
            idx.saturating_sub(1)
        } else {
            (idx + 1).min(self.space.thread_counts.len() - 1)
        };
        ConfigPoint {
            power_watts: base.power_watts,
            omp: OmpConfig::new(
                self.space.thread_counts[next],
                base.omp.schedule,
                base.omp.chunk.or(Some(1)),
            ),
        }
    }

    /// Runs the search.
    pub fn tune(&self, evaluator: &dyn RegionEvaluator, objective: &Objective) -> TuningResult {
        let mut rng = SeededRng::new(self.seed);
        let candidates = OracleTuner::new(self.space).candidates(objective);
        let tune_power = objective.tunes_power();

        // Start from the default configuration's nearest tuned neighbour.
        let start = ConfigPoint {
            power_watts: objective
                .fixed_power()
                .unwrap_or_else(|| *self.space.power_levels.last().unwrap()),
            omp: OmpConfig::new(
                *self.space.thread_counts.last().unwrap(),
                Schedule::Static,
                Some(1),
            ),
        };
        let mut best_point = start;
        let mut best_sample = evaluator.evaluate(&best_point);
        let mut best_score = objective.score(&best_sample);

        // AUC-bandit state: exponentially decayed credit per technique.
        let mut credit = [1.0f64; 3];
        let mut uses = [1.0f64; 3];
        let decay = 0.9;

        for _ in 1..self.budget {
            // Select the technique with the best upper-confidence credit.
            let total_uses: f64 = uses.iter().sum();
            let t_idx = (0..TECHNIQUES.len())
                .max_by(|&a, &b| {
                    let ucb = |i: usize| {
                        credit[i] / uses[i] + (2.0 * total_uses.ln() / uses[i]).sqrt() * 0.3
                    };
                    ucb(a).total_cmp(&ucb(b))
                })
                // pnp-lint: allow(unwrap) — TECHNIQUES is a non-empty const array
                .unwrap();
            let candidate = match TECHNIQUES[t_idx] {
                Technique::Random => candidates[rng.below(candidates.len())],
                Technique::HillClimb => self.mutate(&mut rng, &best_point, tune_power),
                Technique::PatternStep => self.pattern_step(&mut rng, &best_point),
            };
            let sample = evaluator.evaluate(&candidate);
            let score = objective.score(&sample);

            for c in credit.iter_mut() {
                *c *= decay;
            }
            for u in uses.iter_mut() {
                *u *= decay;
            }
            uses[t_idx] += 1.0;
            if score < best_score {
                credit[t_idx] += 1.0;
                best_score = score;
                best_point = candidate;
                best_sample = sample;
            }
        }

        TuningResult::new(
            "opentuner",
            best_point,
            best_sample,
            evaluator.evaluations(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use pnp_machine::haswell;
    use pnp_openmp::RegionProfile;

    #[test]
    fn search_respects_budget_and_improves_over_its_start() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let profile = RegionProfile {
            imbalance: 1.0,
            imbalance_shape: pnp_openmp::ImbalanceShape::Ramp,
            ..RegionProfile::balanced("r", 20_000)
        };
        let o = Objective::TimeAtPower { power_watts: 40.0 };
        let eval = SimEvaluator::new(machine.clone(), profile.clone());
        let result = OpenTunerLike::new(&space, 5)
            .with_budget(40)
            .tune(&eval, &o);
        assert_eq!(result.evaluations, 40);

        // Compare against the very first point it evaluated (its start).
        let eval2 = SimEvaluator::new(machine, profile);
        let start_sample = eval2.evaluate(&ConfigPoint {
            power_watts: 40.0,
            omp: OmpConfig::new(32, Schedule::Static, Some(1)),
        });
        assert!(result.best_sample.time_s <= start_sample.time_s);
    }

    #[test]
    fn edp_objective_explores_power_levels() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let eval = SimEvaluator::new(machine, RegionProfile::balanced("r", 200_000));
        let result = OpenTunerLike::new(&space, 9)
            .with_budget(80)
            .tune(&eval, &Objective::Edp);
        assert!(space.power_levels.contains(&result.best_point.power_watts));
    }

    #[test]
    fn deterministic_for_a_fixed_seed() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let profile = RegionProfile::balanced("r", 50_000);
        let o = Objective::Edp;
        let a = OpenTunerLike::new(&space, 123)
            .tune(&SimEvaluator::new(machine.clone(), profile.clone()), &o);
        let b = OpenTunerLike::new(&space, 123).tune(&SimEvaluator::new(machine, profile), &o);
        assert_eq!(a.best_point, b.best_point);
    }
}
