//! The default-configuration baseline.

use crate::evaluator::RegionEvaluator;
use crate::objective::Objective;
use crate::result::TuningResult;
use crate::space::{ConfigPoint, SearchSpace};
use pnp_machine::EnergySample;

/// The baseline every speedup/greenup in the paper is measured against: the
/// default OpenMP configuration (all hardware threads, static schedule,
/// default chunk) at the objective's power level — or at TDP for the EDP
/// scenario.
pub struct DefaultBaseline<'a> {
    space: &'a SearchSpace,
    /// The machine's TDP (used when the objective does not fix a power cap).
    pub tdp_watts: f64,
}

impl<'a> DefaultBaseline<'a> {
    /// Creates the baseline.
    pub fn new(space: &'a SearchSpace, tdp_watts: f64) -> Self {
        DefaultBaseline { space, tdp_watts }
    }

    /// The baseline configuration point for an objective.
    pub fn point(&self, objective: &Objective) -> ConfigPoint {
        ConfigPoint {
            power_watts: objective.fixed_power().unwrap_or(self.tdp_watts),
            omp: self.space.default_config,
        }
    }

    /// Evaluates the baseline.
    pub fn sample(&self, evaluator: &dyn RegionEvaluator, objective: &Objective) -> EnergySample {
        evaluator.evaluate(&self.point(objective))
    }

    /// The baseline expressed as a [`TuningResult`] (zero tuning evaluations).
    pub fn as_result(
        &self,
        evaluator: &dyn RegionEvaluator,
        objective: &Objective,
    ) -> TuningResult {
        TuningResult::new(
            "default",
            self.point(objective),
            self.sample(evaluator, objective),
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use pnp_machine::haswell;
    use pnp_openmp::{RegionProfile, Schedule};

    #[test]
    fn baseline_uses_default_config_at_the_right_power() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let baseline = DefaultBaseline::new(&space, machine.tdp_watts);
        let p1 = baseline.point(&Objective::TimeAtPower { power_watts: 60.0 });
        assert_eq!(p1.power_watts, 60.0);
        assert_eq!(p1.omp.threads, 32);
        assert_eq!(p1.omp.schedule, Schedule::Static);
        assert_eq!(p1.omp.chunk, None);
        let p2 = baseline.point(&Objective::Edp);
        assert_eq!(p2.power_watts, 85.0);
    }

    #[test]
    fn baseline_sample_is_reproducible() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let baseline = DefaultBaseline::new(&space, machine.tdp_watts);
        let eval = SimEvaluator::new(machine, RegionProfile::balanced("r", 10_000));
        let o = Objective::TimeAtPower { power_watts: 70.0 };
        assert_eq!(baseline.sample(&eval, &o), baseline.sample(&eval, &o));
    }
}
