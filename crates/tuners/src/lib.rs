//! # pnp-tuners
//!
//! The tuning problem and the tuners the paper compares against:
//!
//! * [`SearchSpace`] — Table I: four power caps per machine, six thread
//!   counts, three schedules, seven chunk sizes (504 combinations, plus the
//!   default OpenMP configuration at each power level → 508 points).
//! * [`Objective`] — what is being minimized: execution time at a fixed
//!   power cap (scenario 1) or the energy-delay product over the joint
//!   power × configuration space (scenario 2).
//! * [`SimEvaluator`] — runs a configuration through the analytic execution
//!   model; every execution-based tuner is charged one "sampling run" per
//!   call, reproducing the cost asymmetry the paper emphasizes (the PnP
//!   tuner needs zero executions, BLISS ~20, OpenTuner many more).
//! * [`OracleTuner`] — exhaustive search (the normalizer for every figure).
//! * [`DefaultBaseline`] — the default OpenMP configuration.
//! * [`RandomTuner`] — budgeted random search (sanity baseline).
//! * [`BlissTuner`] — a BLISS-style tuner: a pool of lightweight surrogate
//!   models with acquisition-driven sampling under a small budget.
//! * [`OpenTunerLike`] — an AUC-bandit meta-search over hill-climbing /
//!   random / pattern-step operators under an evaluation budget.
//!
//! The GNN-based PnP tuner itself lives in `pnp-core` (it needs the trained
//! model); it consumes the same [`SearchSpace`] indices defined here.

pub mod baseline;
pub mod bliss;
pub mod evaluator;
pub mod objective;
pub mod opentuner;
pub mod oracle;
pub mod random;
pub mod result;
pub mod space;

pub use baseline::DefaultBaseline;
pub use bliss::BlissTuner;
pub use evaluator::{RegionEvaluator, SimEvaluator};
pub use objective::Objective;
pub use opentuner::OpenTunerLike;
pub use oracle::OracleTuner;
pub use random::RandomTuner;
pub use result::TuningResult;
pub use space::{ConfigPoint, SearchSpace};
