//! Tuning results.

use crate::space::ConfigPoint;
use pnp_machine::EnergySample;
use serde::{Deserialize, Serialize};

/// The outcome of one tuner run on one region.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuningResult {
    /// Name of the tuner that produced the result.
    pub tuner: String,
    /// The best configuration point found.
    pub best_point: ConfigPoint,
    /// The sample observed (or predicted) at the best point.
    pub best_sample: EnergySample,
    /// Number of region executions the tuner needed (0 for the static PnP
    /// tuner, 2 for the dynamic PnP tuner, ≥ budget for the search tuners).
    pub evaluations: usize,
}

impl TuningResult {
    /// Creates a result.
    pub fn new(
        tuner: impl Into<String>,
        best_point: ConfigPoint,
        best_sample: EnergySample,
        evaluations: usize,
    ) -> Self {
        TuningResult {
            tuner: tuner.into(),
            best_point,
            best_sample,
            evaluations,
        }
    }

    /// Speedup of this result over a baseline sample.
    pub fn speedup_over(&self, baseline: &EnergySample) -> f64 {
        self.best_sample.speedup_over(baseline)
    }

    /// Greenup of this result over a baseline sample.
    pub fn greenup_over(&self, baseline: &EnergySample) -> f64 {
        self.best_sample.greenup_over(baseline)
    }

    /// EDP improvement of this result over a baseline sample.
    pub fn edp_improvement_over(&self, baseline: &EnergySample) -> f64 {
        self.best_sample.edp_improvement_over(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_openmp::{OmpConfig, Schedule};

    #[test]
    fn derived_metrics_use_the_best_sample() {
        let r = TuningResult::new(
            "test",
            ConfigPoint {
                power_watts: 85.0,
                omp: OmpConfig::new(8, Schedule::Static, Some(64)),
            },
            EnergySample::new(1.0, 50.0),
            20,
        );
        let baseline = EnergySample::new(2.0, 150.0);
        assert_eq!(r.speedup_over(&baseline), 2.0);
        assert_eq!(r.greenup_over(&baseline), 3.0);
        assert_eq!(r.edp_improvement_over(&baseline), 6.0);
        assert_eq!(r.evaluations, 20);
    }
}
