//! Budgeted random search — the simplest execution-based baseline.

use crate::evaluator::RegionEvaluator;
use crate::objective::Objective;
use crate::oracle::OracleTuner;
use crate::result::TuningResult;
use crate::space::SearchSpace;
use pnp_tensor::SeededRng;

/// Random search with a fixed evaluation budget.
pub struct RandomTuner<'a> {
    space: &'a SearchSpace,
    /// Number of sampling executions allowed.
    pub budget: usize,
    seed: u64,
}

impl<'a> RandomTuner<'a> {
    /// Creates a random tuner.
    pub fn new(space: &'a SearchSpace, budget: usize, seed: u64) -> Self {
        RandomTuner {
            space,
            budget: budget.max(1),
            seed,
        }
    }

    /// Runs the search.
    pub fn tune(&self, evaluator: &dyn RegionEvaluator, objective: &Objective) -> TuningResult {
        let mut rng = SeededRng::new(self.seed);
        let candidates = OracleTuner::new(self.space).candidates(objective);
        let mut best: Option<(usize, f64)> = None;
        let mut best_sample = None;
        for _ in 0..self.budget.min(candidates.len()) {
            let idx = rng.below(candidates.len());
            let sample = evaluator.evaluate(&candidates[idx]);
            let score = objective.score(&sample);
            if best.is_none_or(|(_, s)| score < s) {
                best = Some((idx, score));
                best_sample = Some(sample);
            }
        }
        let (idx, _) = best.unwrap();
        TuningResult::new(
            "random",
            candidates[idx],
            best_sample.unwrap(),
            evaluator.evaluations(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use pnp_machine::haswell;
    use pnp_openmp::RegionProfile;

    #[test]
    fn random_search_respects_its_budget_and_is_deterministic() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let o = Objective::TimeAtPower { power_watts: 60.0 };

        let e1 = SimEvaluator::new(machine.clone(), RegionProfile::balanced("r", 40_000));
        let r1 = RandomTuner::new(&space, 10, 42).tune(&e1, &o);
        assert_eq!(r1.evaluations, 10);

        let e2 = SimEvaluator::new(machine, RegionProfile::balanced("r", 40_000));
        let r2 = RandomTuner::new(&space, 10, 42).tune(&e2, &o);
        assert_eq!(r1.best_point, r2.best_point);
    }

    #[test]
    fn bigger_budgets_never_hurt() {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let o = Objective::Edp;
        let profile = RegionProfile::balanced("r", 40_000);
        let small = RandomTuner::new(&space, 5, 7)
            .tune(&SimEvaluator::new(machine.clone(), profile.clone()), &o);
        let large = RandomTuner::new(&space, 100, 7).tune(&SimEvaluator::new(machine, profile), &o);
        assert!(o.score(&large.best_sample) <= o.score(&small.best_sample) + 1e-12);
    }
}
