//! The oracle: exhaustive search over the relevant slice of the search space.
//!
//! Every figure in the paper normalizes tuner results by the oracle's, so the
//! oracle also exposes the full sweep (every point with its sample), which
//! the dataset-creation pipeline reuses as training labels.

use crate::evaluator::RegionEvaluator;
use crate::objective::Objective;
use crate::result::TuningResult;
use crate::space::{ConfigPoint, SearchSpace};
use pnp_machine::EnergySample;

/// Exhaustive-search tuner.
pub struct OracleTuner<'a> {
    space: &'a SearchSpace,
}

impl<'a> OracleTuner<'a> {
    /// Creates an oracle over a search space.
    pub fn new(space: &'a SearchSpace) -> Self {
        OracleTuner { space }
    }

    /// The candidate points for an objective: all OpenMP configurations at
    /// the fixed power level (scenario 1), or the full joint space
    /// (scenario 2).
    pub fn candidates(&self, objective: &Objective) -> Vec<ConfigPoint> {
        match objective.fixed_power() {
            Some(power) => self
                .space
                .omp_configs()
                .into_iter()
                .map(|omp| ConfigPoint {
                    power_watts: power,
                    omp,
                })
                .collect(),
            None => self.space.joint_points(),
        }
    }

    /// Sweeps every candidate and returns `(point, sample)` pairs in
    /// candidate order.
    pub fn sweep(
        &self,
        evaluator: &dyn RegionEvaluator,
        objective: &Objective,
    ) -> Vec<(ConfigPoint, EnergySample)> {
        self.candidates(objective)
            .into_iter()
            .map(|p| {
                let s = evaluator.evaluate(&p);
                (p, s)
            })
            .collect()
    }

    /// Runs the exhaustive search and returns the best point.
    pub fn tune(&self, evaluator: &dyn RegionEvaluator, objective: &Objective) -> TuningResult {
        let sweep = self.sweep(evaluator, objective);
        let (best_point, best_sample) = sweep
            .into_iter()
            .min_by(|a, b| objective.score(&a.1).total_cmp(&objective.score(&b.1)))
            // pnp-lint: allow(unwrap) — the sweep visits every candidate and the space is non-empty
            .expect("search space is never empty");
        TuningResult::new("oracle", best_point, best_sample, evaluator.evaluations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimEvaluator;
    use pnp_machine::haswell;
    use pnp_openmp::RegionProfile;

    fn setup() -> (SearchSpace, SimEvaluator) {
        let machine = haswell();
        let space = SearchSpace::for_machine(&machine);
        let eval = SimEvaluator::new(machine, RegionProfile::balanced("r", 30_000));
        (space, eval)
    }

    #[test]
    fn scenario1_oracle_sweeps_126_points() {
        let (space, eval) = setup();
        let oracle = OracleTuner::new(&space);
        let result = oracle.tune(&eval, &Objective::TimeAtPower { power_watts: 60.0 });
        assert_eq!(result.evaluations, 126);
        assert_eq!(result.best_point.power_watts, 60.0);
    }

    #[test]
    fn scenario2_oracle_sweeps_the_joint_space() {
        let (space, eval) = setup();
        let oracle = OracleTuner::new(&space);
        let result = oracle.tune(&eval, &Objective::Edp);
        assert_eq!(result.evaluations, 504);
    }

    #[test]
    fn oracle_selection_is_bitwise_identical_across_runs() {
        // The `total_cmp` argmin must pick the same point with the same
        // score bits on every run — ties and denormals included.
        let (space, _) = setup();
        let objective = Objective::Edp;
        let run = || {
            let (_, eval) = setup();
            OracleTuner::new(&space).tune(&eval, &objective)
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best_point, b.best_point);
        assert_eq!(
            objective.score(&a.best_sample).to_bits(),
            objective.score(&b.best_sample).to_bits()
        );
    }

    #[test]
    fn oracle_result_is_no_worse_than_any_sweep_point() {
        let (space, eval) = setup();
        let oracle = OracleTuner::new(&space);
        let objective = Objective::TimeAtPower { power_watts: 85.0 };
        let sweep = oracle.sweep(&eval, &objective);
        let best = oracle.tune(&eval, &objective);
        for (_, s) in sweep {
            assert!(objective.score(&best.best_sample) <= objective.score(&s) + 1e-12);
        }
    }
}
