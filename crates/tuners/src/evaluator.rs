//! Region evaluators: how tuners "execute" a candidate configuration.

use crate::space::ConfigPoint;
use pnp_machine::{EnergySample, MachineSpec, PowerModel};
use pnp_openmp::sim::simulate_region_with_model;
use pnp_openmp::RegionProfile;
use std::cell::Cell;

/// Anything that can produce a `(time, energy)` sample for a configuration
/// point. Execution-based tuners (oracle, BLISS, OpenTuner, random) call this
/// once per sampling run; the call count is the tuner's "cost".
pub trait RegionEvaluator {
    /// Runs the region under the configuration point and reports the sample.
    fn evaluate(&self, point: &ConfigPoint) -> EnergySample;

    /// How many evaluations have been performed so far.
    fn evaluations(&self) -> usize;
}

/// An evaluator backed by the analytic execution model of `pnp-openmp`.
pub struct SimEvaluator {
    machine: MachineSpec,
    power_model: PowerModel,
    profile: RegionProfile,
    count: Cell<usize>,
}

impl SimEvaluator {
    /// Creates an evaluator for one region on one machine.
    pub fn new(machine: MachineSpec, profile: RegionProfile) -> Self {
        let power_model = PowerModel::for_machine(&machine);
        SimEvaluator {
            machine,
            power_model,
            profile,
            count: Cell::new(0),
        }
    }

    /// The machine this evaluator simulates.
    pub fn machine(&self) -> &MachineSpec {
        &self.machine
    }

    /// The region profile being evaluated.
    pub fn profile(&self) -> &RegionProfile {
        &self.profile
    }
}

impl RegionEvaluator for SimEvaluator {
    fn evaluate(&self, point: &ConfigPoint) -> EnergySample {
        self.count.set(self.count.get() + 1);
        let result = simulate_region_with_model(
            &self.machine,
            &self.power_model,
            &self.profile,
            &point.omp,
            point.power_watts,
        );
        result.sample()
    }

    fn evaluations(&self) -> usize {
        self.count.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnp_machine::haswell;
    use pnp_openmp::{OmpConfig, Schedule};

    fn evaluator() -> SimEvaluator {
        SimEvaluator::new(haswell(), RegionProfile::balanced("r", 50_000))
    }

    #[test]
    fn evaluation_count_increments() {
        let e = evaluator();
        assert_eq!(e.evaluations(), 0);
        let point = ConfigPoint {
            power_watts: 60.0,
            omp: OmpConfig::new(8, Schedule::Static, Some(32)),
        };
        let s1 = e.evaluate(&point);
        let s2 = e.evaluate(&point);
        assert_eq!(e.evaluations(), 2);
        // Deterministic simulator: same point, same sample.
        assert_eq!(s1, s2);
        assert!(s1.time_s > 0.0 && s1.energy_j > 0.0);
    }

    #[test]
    fn different_points_give_different_samples() {
        let e = evaluator();
        let a = e.evaluate(&ConfigPoint {
            power_watts: 40.0,
            omp: OmpConfig::new(1, Schedule::Static, Some(1)),
        });
        let b = e.evaluate(&ConfigPoint {
            power_watts: 85.0,
            omp: OmpConfig::new(32, Schedule::Dynamic, Some(64)),
        });
        assert_ne!(a, b);
    }
}
