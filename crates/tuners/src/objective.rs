//! Tuning objectives.

use pnp_machine::EnergySample;
use serde::{Deserialize, Serialize};

/// What a tuner minimizes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Objective {
    /// Scenario 1: minimize execution time at a fixed, externally imposed
    /// power cap (the cap is not tunable).
    TimeAtPower {
        /// The imposed package power cap in watts.
        power_watts: f64,
    },
    /// Scenario 2: minimize the energy-delay product over the joint
    /// (power cap × OpenMP configuration) space.
    Edp,
}

impl Objective {
    /// The scalar score of an execution under this objective (lower is
    /// better).
    pub fn score(&self, sample: &EnergySample) -> f64 {
        match self {
            Objective::TimeAtPower { .. } => sample.time_s,
            Objective::Edp => sample.edp(),
        }
    }

    /// True when this objective also tunes the power level.
    pub fn tunes_power(&self) -> bool {
        matches!(self, Objective::Edp)
    }

    /// The fixed power cap of a scenario-1 objective, if any.
    pub fn fixed_power(&self) -> Option<f64> {
        match self {
            Objective::TimeAtPower { power_watts } => Some(*power_watts),
            Objective::Edp => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_objective_scores_time_only() {
        let o = Objective::TimeAtPower { power_watts: 60.0 };
        let s = EnergySample::new(2.0, 500.0);
        assert_eq!(o.score(&s), 2.0);
        assert!(!o.tunes_power());
        assert_eq!(o.fixed_power(), Some(60.0));
    }

    #[test]
    fn edp_objective_scores_product() {
        let o = Objective::Edp;
        let s = EnergySample::new(2.0, 500.0);
        assert_eq!(o.score(&s), 1000.0);
        assert!(o.tunes_power());
        assert_eq!(o.fixed_power(), None);
    }
}
