//! Inverted dropout regularization.

use crate::init::SeededRng;
use crate::layer::Layer;
use crate::Tensor;

/// Inverted dropout: during training each element is zeroed with probability
/// `p` and the survivors are scaled by `1/(1-p)`; at inference the layer is
/// the identity.
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    rng: SeededRng,
    mask: Option<Tensor>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` and its own RNG seed.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        Dropout {
            p,
            rng: SeededRng::new(seed),
            mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.mask = None;
            return input.clone();
        }
        let keep = 1.0 - self.p;
        let mut mask = Tensor::zeros(&input.shape);
        for m in mask.data.iter_mut() {
            *m = if self.rng.bernoulli(keep) {
                1.0 / keep
            } else {
                0.0
            };
        }
        let out = input.mul(&mask);
        self.mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        match &self.mask {
            Some(mask) => grad_output.mul(mask),
            None => grad_output.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::ones(&[4, 4]);
        let y = d.forward(&x, false);
        assert_eq!(y, x);
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[100, 100]);
        let y = d.forward(&x, true);
        let zeros = y.data.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / y.numel() as f32;
        assert!((frac - 0.5).abs() < 0.05, "zero fraction {frac}");
        // Survivors are scaled so the expected value is preserved.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_applies_same_mask() {
        let mut d = Dropout::new(0.3, 3);
        let x = Tensor::ones(&[10, 10]);
        let y = d.forward(&x, true);
        let g = d.backward(&Tensor::ones(&[10, 10]));
        // gradient is zero exactly where the output was zero
        for (o, gr) in y.data.iter().zip(&g.data) {
            assert_eq!(*o == 0.0, *gr == 0.0);
        }
    }

    #[test]
    fn zero_probability_is_identity_even_in_training() {
        let mut d = Dropout::new(0.0, 4);
        let x = Tensor::ones(&[3, 3]);
        assert_eq!(d.forward(&x, true), x);
    }
}
