//! Deterministic random number generation and weight initialization schemes.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::Tensor;

/// A seeded random number generator used everywhere in the workspace so that
/// experiments are exactly reproducible run-to-run.
pub struct SeededRng {
    inner: ChaCha8Rng,
    /// Cached second value of the Box-Muller pair.
    spare_normal: Option<f32>,
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator (used to give each LOOCV fold
    /// or each tuner its own stream without correlation).
    pub fn fork(&mut self, stream: u64) -> SeededRng {
        let seed = self.inner.gen::<u64>() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(seed)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen::<f32>() * (hi - lo) + lo
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample (Box-Muller).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        loop {
            let u1: f32 = self.inner.gen::<f32>();
            let u2: f32 = self.inner.gen::<f32>();
            if u1 <= f32::MIN_POSITIVE {
                continue;
            }
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            self.spare_normal = Some(r * theta.sin());
            return r * theta.cos();
        }
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn bernoulli(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        if xs.len() < 2 {
            return;
        }
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Picks one element uniformly at random.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Raw 64-bit value, for deriving sub-seeds.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`. Suited for tanh/linear layers.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(&[fan_in, fan_out], -a, a, rng)
}

/// Kaiming/He normal initialization: `N(0, sqrt(2 / fan_in))`. Suited for
/// ReLU-family activations (what the PnP model uses).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    let mut t = Tensor::randn(&[fan_in, fan_out], rng);
    t.data.iter_mut().for_each(|x| *x *= std);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = SeededRng::new(3);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(4);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = SeededRng::new(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(6);
        let mut xs: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = SeededRng::new(7);
        let w = xavier_uniform(64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(w.data.iter().all(|x| x.abs() <= a));
    }

    #[test]
    fn kaiming_scale() {
        let mut rng = SeededRng::new(8);
        let w = kaiming_normal(256, 64, &mut rng);
        let std = (w.data.iter().map(|x| x * x).sum::<f32>() / w.numel() as f32).sqrt();
        let expected = (2.0f32 / 256.0).sqrt();
        assert!((std - expected).abs() / expected < 0.15);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut base = SeededRng::new(9);
        let mut c1 = base.fork(1);
        let mut c2 = base.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
