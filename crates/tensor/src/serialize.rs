//! Weight checkpointing.
//!
//! The paper's transfer-learning optimization (Section IV-B) saves the GNN
//! weights trained on the Haswell dataset and re-loads them before training
//! on Skylake, re-training only the dense classifier layers. This module
//! provides the (de)serialization that experiment relies on.

use crate::layer::Parameter;
use crate::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

/// A named collection of parameter values (no gradients) that can be written
/// to / read from JSON.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ParameterBundle {
    /// Parameter values keyed by their stable names.
    pub tensors: BTreeMap<String, Tensor>,
}

impl ParameterBundle {
    /// Captures the current values of the given parameters.
    pub fn capture(params: &[&Parameter]) -> Self {
        let mut tensors = BTreeMap::new();
        for p in params {
            tensors.insert(p.name.clone(), p.value.clone());
        }
        ParameterBundle { tensors }
    }

    /// Restores values into matching parameters (matched by name and shape).
    ///
    /// Returns the number of parameters that were restored. Parameters with
    /// no matching entry are left untouched, which is exactly what the
    /// transfer-learning experiment wants (dense layers stay freshly
    /// initialized).
    pub fn restore(&self, params: &mut [&mut Parameter]) -> usize {
        let mut restored = 0;
        for p in params.iter_mut() {
            if let Some(saved) = self.tensors.get(&p.name) {
                if saved.shape == p.value.shape {
                    p.value = saved.clone();
                    restored += 1;
                }
            }
        }
        restored
    }

    /// Number of stored tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when the bundle holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar values stored.
    pub fn num_weights(&self) -> usize {
        self.tensors.values().map(|t| t.numel()).sum()
    }

    /// Keeps only tensors whose name starts with `prefix` (e.g. `"rgcn"` to
    /// transfer only the graph layers).
    pub fn filter_prefix(&self, prefix: &str) -> ParameterBundle {
        ParameterBundle {
            tensors: self
                .tensors
                .iter()
                .filter(|(name, _)| name.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }

    /// Serializes the bundle to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("ParameterBundle serialization cannot fail")
    }

    /// Parses a bundle from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Writes parameters to a JSON checkpoint file.
pub fn save_parameters(path: &Path, params: &[&Parameter]) -> io::Result<()> {
    let bundle = ParameterBundle::capture(params);
    fs::write(path, bundle.to_json())
}

/// Loads a JSON checkpoint file into a bundle.
pub fn load_parameters(path: &Path) -> io::Result<ParameterBundle> {
    let json = fs::read_to_string(path)?;
    ParameterBundle::from_json(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_params() -> Vec<Parameter> {
        vec![
            Parameter::new("rgcn0.weight", Tensor::full(&[2, 2], 1.5)),
            Parameter::new("fc1.weight", Tensor::full(&[2, 3], -0.5)),
        ]
    }

    #[test]
    fn capture_restore_roundtrip() {
        let params = make_params();
        let refs: Vec<&Parameter> = params.iter().collect();
        let bundle = ParameterBundle::capture(&refs);
        assert_eq!(bundle.len(), 2);
        assert_eq!(bundle.num_weights(), 10);

        let mut fresh = make_params();
        fresh[0].value.fill(0.0);
        fresh[1].value.fill(0.0);
        let mut refs_mut: Vec<&mut Parameter> = fresh.iter_mut().collect();
        let restored = bundle.restore(&mut refs_mut);
        assert_eq!(restored, 2);
        assert_eq!(fresh[0].value.get(0, 0), 1.5);
        assert_eq!(fresh[1].value.get(1, 2), -0.5);
    }

    #[test]
    fn restore_skips_shape_mismatch() {
        let params = make_params();
        let refs: Vec<&Parameter> = params.iter().collect();
        let bundle = ParameterBundle::capture(&refs);

        let mut other = [Parameter::new("rgcn0.weight", Tensor::zeros(&[3, 3]))];
        let mut refs_mut: Vec<&mut Parameter> = other.iter_mut().collect();
        assert_eq!(bundle.restore(&mut refs_mut), 0);
        assert!(other[0].value.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn filter_prefix_selects_gnn_layers_only() {
        let params = make_params();
        let refs: Vec<&Parameter> = params.iter().collect();
        let bundle = ParameterBundle::capture(&refs).filter_prefix("rgcn");
        assert_eq!(bundle.len(), 1);
        assert!(bundle.tensors.contains_key("rgcn0.weight"));
    }

    #[test]
    fn json_roundtrip() {
        let params = make_params();
        let refs: Vec<&Parameter> = params.iter().collect();
        let bundle = ParameterBundle::capture(&refs);
        let json = bundle.to_json();
        let back = ParameterBundle::from_json(&json).unwrap();
        assert_eq!(back.tensors["fc1.weight"], bundle.tensors["fc1.weight"]);
    }

    #[test]
    fn file_roundtrip() {
        let params = make_params();
        let refs: Vec<&Parameter> = params.iter().collect();
        let dir = std::env::temp_dir().join("pnp_tensor_ckpt_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weights.json");
        save_parameters(&path, &refs).unwrap();
        let bundle = load_parameters(&path).unwrap();
        assert_eq!(bundle.len(), 2);
        fs::remove_file(&path).ok();
    }
}
