//! Elementwise operations, reductions and broadcasting helpers on [`Tensor`].

use crate::Tensor;

impl Tensor {
    /// Elementwise addition. Shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise division.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a / b)
    }

    /// In-place elementwise addition.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in add_assign");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }

    /// In-place `self += scale * other` (AXPY).
    pub fn axpy(&mut self, scale: f32, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "shape mismatch in axpy");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * *b;
        }
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place scalar multiplication.
    pub fn scale_inplace(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Tensor, f: F) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    /// Adds a row vector (bias) to every row of a matrix.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(
            bias.numel(),
            self.cols(),
            "bias length {} must equal column count {}",
            bias.numel(),
            self.cols()
        );
        let mut out = self.clone();
        for r in 0..out.rows() {
            for (d, b) in out.row_mut(r).iter_mut().zip(&bias.data) {
                *d += *b;
            }
        }
        out
    }

    /// Sum of every element.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of every element.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Maximum element (NaN-free input assumed).
    pub fn max(&self) -> f32 {
        self.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data.iter().cloned().fold(f32::INFINITY, f32::min)
    }

    /// Column-wise sum: returns a 1-D tensor of length `cols`.
    pub fn sum_rows(&self) -> Tensor {
        let mut out = Tensor::zeros(&[self.cols()]);
        for r in 0..self.rows() {
            for (o, v) in out.data.iter_mut().zip(self.row(r)) {
                *o += *v;
            }
        }
        out
    }

    /// Column-wise mean: returns a 1-D tensor of length `cols`.
    pub fn mean_rows(&self) -> Tensor {
        let mut s = self.sum_rows();
        let n = self.rows().max(1) as f32;
        s.scale_inplace(1.0 / n);
        s
    }

    /// Per-segment column-wise sum over contiguous row ranges.
    ///
    /// `segments` holds `B + 1` ascending row offsets delimiting `B`
    /// contiguous row blocks (`segments[0] == 0`,
    /// `segments[B] == self.rows()`); block `i` spans rows
    /// `segments[i]..segments[i + 1]`. Returns a `[B, cols]` matrix whose
    /// row `i` equals `sum_rows()` of block `i` — same accumulation order
    /// (rows ascending, one f32 accumulator per column), so each output
    /// row is bit-identical to summing the block as a standalone matrix.
    pub fn segment_sum_rows(&self, segments: &[usize]) -> Tensor {
        assert!(
            !segments.is_empty(),
            "segments must hold at least one offset"
        );
        let n = segments.len() - 1;
        assert_eq!(segments[0], 0, "segments must start at row 0");
        assert_eq!(
            segments[n],
            self.rows(),
            "segments must end at the row count"
        );
        let cols = self.cols();
        let mut out = Tensor::zeros(&[n, cols]);
        for s in 0..n {
            assert!(segments[s] <= segments[s + 1], "segments must be ascending");
            let dst = out.row_mut(s);
            for r in segments[s]..segments[s + 1] {
                for (o, v) in dst.iter_mut().zip(self.row(r)) {
                    *o += *v;
                }
            }
        }
        out
    }

    /// Per-segment column-wise mean over contiguous row ranges.
    ///
    /// Same layout contract as [`Tensor::segment_sum_rows`]; row `i` of the
    /// result equals `mean_rows()` of block `i` bit-for-bit (segment sum,
    /// then one multiplication by `1.0 / len`, with empty blocks divided by
    /// 1 exactly as `mean_rows` does for an empty matrix).
    pub fn segment_mean_rows(&self, segments: &[usize]) -> Tensor {
        let mut out = self.segment_sum_rows(segments);
        for s in 0..segments.len() - 1 {
            let len = (segments[s + 1] - segments[s]).max(1) as f32;
            let inv = 1.0 / len;
            for x in out.row_mut(s) {
                *x *= inv;
            }
        }
        out
    }

    /// Index of the maximum value in row `r`.
    pub fn argmax_row(&self, r: usize) -> usize {
        let row = self.row(r);
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        best
    }

    /// Per-row argmax for the whole matrix.
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows()).map(|r| self.argmax_row(r)).collect()
    }

    /// Clamps all values into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> Tensor {
        self.map(f32::sqrt)
    }

    /// Elementwise absolute value.
    pub fn abs(&self) -> Tensor {
        self.map(f32::abs)
    }

    /// Returns the dot product of two 1-D tensors (or flattened tensors of
    /// equal length).
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }
}

/// Computes the geometric mean of a slice of positive values.
///
/// Used throughout the evaluation: the paper reports geometric-mean speedups,
/// greenups, and EDP improvements.
///
/// Total on all inputs (the paper-fidelity validator sweeps degenerate
/// cases through every aggregate): an empty slice yields the multiplicative
/// neutral element `1.0`, a single element yields itself, and non-positive
/// or non-finite entries are floored at a tiny positive value instead of
/// panicking (a zero-time/zero-energy region then drags the mean toward
/// zero, which is the honest qualitative signal). Use
/// [`checked_geometric_mean`] when the caller needs to *detect* degenerate
/// input rather than absorb it.
pub fn geometric_mean(values: &[f64]) -> f64 {
    checked_geometric_mean(values).unwrap_or_else(|| {
        if values.is_empty() {
            return 1.0;
        }
        let floor = f64::MIN_POSITIVE;
        let log_sum: f64 = values
            .iter()
            .map(|&v| if v > 0.0 && v.is_finite() { v } else { floor }.ln())
            .sum();
        (log_sum / values.len() as f64).exp()
    })
}

/// Strict geometric mean: `None` when the slice is empty or any value is
/// non-positive or non-finite (the cases [`geometric_mean`] papers over).
pub fn checked_geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0 || !v.is_finite()) {
        return None;
    }
    let log_sum: f64 = values.iter().map(|&v| v.ln()).sum();
    Some((log_sum / values.len() as f64).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).data, vec![5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).data, vec![-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data, vec![4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).data, vec![0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.sum_rows().data, vec![4.0, 6.0]);
        assert_eq!(a.mean_rows().data, vec![2.0, 3.0]);
    }

    #[test]
    fn broadcast_bias() {
        let x = Tensor::zeros(&[3, 2]);
        let b = Tensor::from_vec(vec![1.0, -1.0], &[2]);
        let y = x.add_row_broadcast(&b);
        for r in 0..3 {
            assert_eq!(y.row(r), &[1.0, -1.0]);
        }
    }

    #[test]
    fn segment_reductions_match_per_block_reductions_bitwise() {
        // Ragged blocks (3, 1, 0, 2 rows) with awkward values so any change
        // in accumulation order would flip low bits.
        let rows: Vec<Vec<f32>> = (0..6)
            .map(|r| (0..3).map(|c| 0.1 + (r * 3 + c) as f32 * 0.3).collect())
            .collect();
        let m = Tensor::from_rows(&rows);
        let segments = [0usize, 3, 4, 4, 6];
        let sums = m.segment_sum_rows(&segments);
        let means = m.segment_mean_rows(&segments);
        assert_eq!(sums.shape, vec![4, 3]);
        assert_eq!(means.shape, vec![4, 3]);
        for s in 0..4 {
            let slice = &rows[segments[s]..segments[s + 1]];
            let block = if slice.is_empty() {
                Tensor::zeros(&[0, 3])
            } else {
                Tensor::from_rows(slice)
            };
            for (got, want) in sums.row(s).iter().zip(&block.sum_rows().data) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
            for (got, want) in means.row(s).iter().zip(&block.mean_rows().data) {
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    #[test]
    fn whole_matrix_segment_equals_plain_reductions() {
        let m = Tensor::from_rows(&[vec![1.5, -2.0], vec![0.25, 7.0], vec![-3.0, 0.5]]);
        let sums = m.segment_sum_rows(&[0, 3]);
        assert_eq!(sums.row(0), &m.sum_rows().data[..]);
        let means = m.segment_mean_rows(&[0, 3]);
        assert_eq!(means.row(0), &m.mean_rows().data[..]);
    }

    #[test]
    #[should_panic]
    fn segment_offsets_must_cover_all_rows() {
        let m = Tensor::zeros(&[4, 2]);
        let _ = m.segment_sum_rows(&[0, 2]);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let x = Tensor::from_rows(&[vec![0.1, 0.9, 0.2], vec![5.0, 1.0, 2.0]]);
        assert_eq!(x.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[2, 2]);
        let b = Tensor::full(&[2, 2], 3.0);
        a.axpy(2.0, &b);
        assert!(a.data.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let g = geometric_mean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        let g = geometric_mean(&[2.0, 2.0, 2.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 1.0);
    }

    #[test]
    fn geometric_mean_is_total_on_degenerate_input() {
        // Single element: identity (up to rounding through exp∘ln).
        assert!((geometric_mean(&[3.25]) - 3.25).abs() < 1e-12);
        // Zero / negative / non-finite entries no longer panic; they are
        // floored and drag the mean toward zero.
        let with_zero = geometric_mean(&[0.0, 4.0]);
        assert!(with_zero.is_finite() && (0.0..1e-6).contains(&with_zero));
        assert!(geometric_mean(&[-1.0, 2.0]).is_finite());
        assert!(geometric_mean(&[f64::NAN, 2.0]).is_finite());
        assert!(geometric_mean(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn checked_geometric_mean_detects_degenerate_input() {
        assert!((checked_geometric_mean(&[2.0, 8.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((checked_geometric_mean(&[5.0]).unwrap() - 5.0).abs() < 1e-12);
        assert_eq!(checked_geometric_mean(&[]), None);
        assert_eq!(checked_geometric_mean(&[0.0, 4.0]), None);
        assert_eq!(checked_geometric_mean(&[-1.0]), None);
        assert_eq!(checked_geometric_mean(&[f64::NAN]), None);
        assert_eq!(checked_geometric_mean(&[f64::INFINITY]), None);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_panic() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.add(&b);
    }
}
