//! Activation functions with cached-input backward passes.
//!
//! The PnP model (Table II) uses Leaky ReLU inside the RGCN stack and ReLU in
//! the dense classifier; Sigmoid and Tanh are provided for the surrogate
//! models used by the BLISS-style tuner.

use crate::layer::Layer;
use crate::Tensor;

macro_rules! simple_activation {
    ($(#[$meta:meta])* $name:ident, $fwd:expr, $bwd:expr) => {
        $(#[$meta])*
        pub struct $name {
            cached_input: Option<Tensor>,
        }

        impl $name {
            /// Creates the activation layer.
            pub fn new() -> Self {
                Self { cached_input: None }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new()
            }
        }

        impl Layer for $name {
            fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
                if train {
                    self.cached_input = Some(input.clone());
                }
                let f: fn(f32) -> f32 = $fwd;
                input.map(f)
            }

            fn backward(&mut self, grad_output: &Tensor) -> Tensor {
                let input = self
                    .cached_input
                    .as_ref()
                    .expect("activation backward called before forward(train=true)");
                let d: fn(f32) -> f32 = $bwd;
                grad_output.zip_with(&input.map(d), |g, dx| g * dx)
            }
        }
    };
}

simple_activation!(
    /// Rectified linear unit: `max(0, x)`.
    ReLU,
    |x| if x > 0.0 { x } else { 0.0 },
    |x| if x > 0.0 { 1.0 } else { 0.0 }
);

simple_activation!(
    /// Hyperbolic tangent activation.
    Tanh,
    |x| x.tanh(),
    |x| 1.0 - x.tanh() * x.tanh()
);

simple_activation!(
    /// Logistic sigmoid activation.
    Sigmoid,
    |x| 1.0 / (1.0 + (-x).exp()),
    |x| {
        let s = 1.0 / (1.0 + (-x).exp());
        s * (1.0 - s)
    }
);

/// Leaky rectified linear unit: `x` for positive inputs, `slope * x` otherwise.
pub struct LeakyReLU {
    /// Negative-side slope (PyTorch default 0.01).
    pub slope: f32,
    cached_input: Option<Tensor>,
}

impl LeakyReLU {
    /// Creates a Leaky ReLU with the default slope of `0.01`.
    pub fn new() -> Self {
        Self::with_slope(0.01)
    }

    /// Creates a Leaky ReLU with a custom negative slope.
    pub fn with_slope(slope: f32) -> Self {
        LeakyReLU {
            slope,
            cached_input: None,
        }
    }
}

impl Default for LeakyReLU {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for LeakyReLU {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(input.clone());
        }
        let s = self.slope;
        input.map(|x| if x > 0.0 { x } else { s * x })
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("LeakyReLU backward called before forward(train=true)");
        let s = self.slope;
        grad_output.zip_with(input, |g, x| if x > 0.0 { g } else { s * g })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]);
        let y = relu.forward(&x, true);
        assert_eq!(y.data, vec![0.0, 0.0, 2.0]);
        let g = relu.backward(&Tensor::ones(&[3]));
        assert_eq!(g.data, vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_keeps_small_negative_slope() {
        let mut lr = LeakyReLU::with_slope(0.1);
        let x = Tensor::from_vec(vec![-2.0, 3.0], &[2]);
        let y = lr.forward(&x, true);
        assert!((y.data[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data[1], 3.0);
        let g = lr.backward(&Tensor::ones(&[2]));
        assert!((g.data[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data[1], 1.0);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::from_vec(vec![-10.0, 0.0, 10.0], &[3]);
        let y = s.forward(&x, true);
        assert!(y.data[0] < 0.01 && y.data[2] > 0.99);
        assert!((y.data[1] - 0.5).abs() < 1e-6);
        let g = s.backward(&Tensor::ones(&[3]));
        assert!((g.data[1] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn tanh_gradient_at_zero_is_one() {
        let mut t = Tanh::new();
        let x = Tensor::zeros(&[1]);
        let _ = t.forward(&x, true);
        let g = t.backward(&Tensor::ones(&[1]));
        assert!((g.data[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activations_have_no_parameters() {
        assert_eq!(ReLU::new().parameters().len(), 0);
        assert_eq!(LeakyReLU::new().parameters().len(), 0);
    }
}
