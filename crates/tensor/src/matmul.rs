//! Matrix multiplication kernels.
//!
//! The RGCN forward/backward passes are dominated by dense `H · W` products
//! where `H` is a node-feature matrix (hundreds of rows) and `W` a small
//! square weight matrix (16–64 columns). A simple ikj-ordered kernel with a
//! transposed-operand variant is more than fast enough on a single core and
//! keeps the code dependency-free.
//!
//! ## Opt-in intra-op parallelism
//!
//! The row-parallel kernels ([`Tensor::matmul`], [`Tensor::matmul_a_bt`])
//! can fan their output-row loop out over the in-tree OpenMP executor
//! (`pnp_openmp::par`). Each worker computes a contiguous *block of output
//! rows* with exactly the serial kernel's per-element operation order (the
//! inner `k` accumulation stays ascending), and blocks are written back by
//! index — so the product is **bit-identical for every worker count**, the
//! same guarantee the dataset sweep and LOOCV training fan-outs rely on
//! (DESIGN.md §9/§10).
//!
//! Parallelism is *opt-in* and defaults to serial: set the
//! `PNP_MATMUL_THREADS` environment variable (`auto` or a worker count) or
//! call [`set_matmul_threads`]. It pays off when large-graph RGCN layers
//! dominate and the outer training fan-out cannot fill the machine on its
//! own (fold-count < core-count); tiny products below
//! [`PAR_MIN_ROWS`] rows always take the serial path, as does
//! `matmul_at_b` (its output rows are *columns* of the left operand, so the
//! serial kk-outer streaming order is the cache-friendly one and its outputs
//! are small weight-gradient matrices).

use crate::Tensor;
use pnp_openmp::{parallel_map_indexed, Threads};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Environment variable giving the default worker count of the row-parallel
/// matmul kernels. Unset or unparseable means serial (the feature is
/// opt-in); `auto` means one worker per available core; a decimal integer
/// means exactly that many workers.
pub const MATMUL_THREADS_ENV_VAR: &str = "PNP_MATMUL_THREADS";

/// Minimum number of output rows before the parallel path engages. Below
/// this the fork/join cost of the per-call executor dwarfs the arithmetic
/// (RGCN weight matrices are 16–64 rows; node-feature matrices are
/// hundreds).
pub const PAR_MIN_ROWS: usize = 128;

/// Worker-count override: `usize::MAX` means "not overridden, consult the
/// environment once".
static MATMUL_THREADS: AtomicUsize = AtomicUsize::new(usize::MAX);

fn env_matmul_threads() -> usize {
    static RESOLVED: OnceLock<usize> = OnceLock::new();
    *RESOLVED.get_or_init(|| match std::env::var(MATMUL_THREADS_ENV_VAR) {
        // Opt-in: unset, empty, or unparseable all mean serial.
        Ok(v) if !v.trim().is_empty() => Threads::parse(&v).map_or(1, |t| t.resolve()),
        _ => 1,
    })
}

/// Sets the worker count used by the row-parallel matmul kernels for the
/// rest of the process (overriding `PNP_MATMUL_THREADS`). `0` and `1` both
/// select the serial path. Safe to flip at any time: the parallel kernels
/// are bit-identical to the serial ones, so concurrent callers only ever
/// observe a performance difference.
pub fn set_matmul_threads(workers: usize) {
    MATMUL_THREADS.store(workers.max(1), Ordering::Relaxed);
}

/// The worker count the row-parallel matmul kernels currently use
/// ([`set_matmul_threads`] if called, else `PNP_MATMUL_THREADS`, else 1).
pub fn matmul_threads() -> usize {
    match MATMUL_THREADS.load(Ordering::Relaxed) {
        usize::MAX => env_matmul_threads(),
        n => n,
    }
}

/// Splits `0..m` into at most `workers` contiguous row blocks and runs
/// `fill` once per block, writing each block's rows into `out.data` by
/// index. `fill(i, row)` must compute output row `i` exactly as the serial
/// kernel would — the split only decides *which thread* computes a row,
/// never the order of float operations within it.
fn fill_rows_blocked<F>(out: &mut Tensor, m: usize, n: usize, workers: usize, fill: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let block = m.div_ceil(workers);
    let blocks = m.div_ceil(block);
    let computed: Vec<Vec<f32>> = parallel_map_indexed(blocks, Threads::Fixed(workers), |b| {
        let start = b * block;
        let end = (start + block).min(m);
        let mut rows = vec![0.0f32; (end - start) * n];
        for i in start..end {
            fill(i, &mut rows[(i - start) * n..(i - start + 1) * n]);
        }
        rows
    });
    for (b, rows) in computed.into_iter().enumerate() {
        let start = b * block * n;
        out.data[start..start + rows.len()].copy_from_slice(&rows);
    }
}

impl Tensor {
    /// Dense matrix product `self · other`.
    ///
    /// Uses the row-parallel kernel when the opt-in matmul worker count
    /// ([`matmul_threads`]) exceeds 1 and the output is at least
    /// [`PAR_MIN_ROWS`] rows tall; the result is bit-identical either way.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_with_threads(other, matmul_threads())
    }

    /// [`Tensor::matmul`] with an explicit worker count (1 = serial). The
    /// result is bit-identical for every `workers` value.
    pub fn matmul_with_threads(&self, other: &Tensor, workers: usize) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul dimension mismatch: ({m}x{k}) · ({k2}x{n})");
        let mut out = Tensor::zeros(&[m, n]);
        // ikj loop order: streams through `other` rows, good cache behaviour.
        let fill_row = |i: usize, out_row: &mut [f32]| {
            let a_row = self.row(i);
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(kk);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        };
        if workers > 1 && m >= PAR_MIN_ROWS {
            fill_rows_blocked(&mut out, m, n, workers, fill_row);
        } else {
            for i in 0..m {
                fill_row(i, out.row_mut(i));
            }
        }
        out
    }

    /// Computes `selfᵀ · other` without materializing the transpose.
    ///
    /// Shapes: `self` is `(k x m)`, `other` is `(k x n)`, result is `(m x n)`.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k, k2,
            "matmul_at_b dimension mismatch: ({k}x{m})ᵀ · ({k2}x{n})"
        );
        let mut out = Tensor::zeros(&[m, n]);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Computes `self · otherᵀ` without materializing the transpose.
    ///
    /// Shapes: `self` is `(m x k)`, `other` is `(n x k)`, result is `(m x n)`.
    /// Row-parallel under the same opt-in knob as [`Tensor::matmul`], with
    /// the same bit-identity guarantee.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        self.matmul_a_bt_with_threads(other, matmul_threads())
    }

    /// [`Tensor::matmul_a_bt`] with an explicit worker count (1 = serial).
    /// The result is bit-identical for every `workers` value.
    pub fn matmul_a_bt_with_threads(&self, other: &Tensor, workers: usize) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k, k2,
            "matmul_a_bt dimension mismatch: ({m}x{k}) · ({n}x{k2})ᵀ"
        );
        let mut out = Tensor::zeros(&[m, n]);
        let fill_row = |i: usize, out_row: &mut [f32]| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        };
        if workers > 1 && m >= PAR_MIN_ROWS {
            fill_rows_blocked(&mut out, m, n, workers, fill_row);
        } else {
            for i in 0..m {
                fill_row(i, out.row_mut(i));
            }
        }
        out
    }

    /// Matrix–vector product `self · v`, returning a 1-D tensor of length
    /// `rows`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.cols(), v.numel(), "matvec dimension mismatch");
        let mut out = Tensor::zeros(&[self.rows()]);
        for i in 0..self.rows() {
            out.data[i] = self.row(i).iter().zip(&v.data).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Outer product of two 1-D tensors: `(m) ⊗ (n) -> (m x n)`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let m = self.numel();
        let n = other.numel();
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a = self.data[i];
            for j in 0..n {
                out.data[i * n + j] = a * other.data[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(1);
        let a = Tensor::randn(&[5, 5], &mut rng);
        let i = Tensor::eye(5);
        let ai = a.matmul(&i);
        for (x, y) in a.data.iter().zip(&ai.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = Tensor::randn(&[7, 3], &mut rng);
        let b = Tensor::randn(&[7, 4], &mut rng);
        let fast = a.matmul_at_b(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data.iter().zip(&slow.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let b = Tensor::randn(&[5, 6], &mut rng);
        let fast = a.matmul_a_bt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data.iter().zip(&slow.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]);
        let out = a.matvec(&v);
        assert_eq!(out.data, vec![-2.0, -2.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape, vec![2, 3]);
        assert_eq!(o.data, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        let mut rng = SeededRng::new(5);
        // Tall enough to clear PAR_MIN_ROWS, with a ragged row count so the
        // last block is short; the sigmoid-ish transform plants exact zeros
        // to exercise the skip-zero branch identically on both paths.
        let m = PAR_MIN_ROWS * 2 + 37;
        let mut a = Tensor::randn(&[m, 48], &mut rng);
        for v in a.data.iter_mut().step_by(7) {
            *v = 0.0;
        }
        let b = Tensor::randn(&[48, 33], &mut rng);
        let serial = a.matmul_with_threads(&b, 1);
        let serial_bt = a.matmul_a_bt_with_threads(&b.transpose(), 1);
        for workers in [2usize, 3, 8, 64] {
            let par = a.matmul_with_threads(&b, workers);
            assert_eq!(par.shape, serial.shape);
            let same = par
                .data
                .iter()
                .zip(&serial.data)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "matmul differs from serial at {workers} workers");
            let par_bt = a.matmul_a_bt_with_threads(&b.transpose(), workers);
            let same_bt = par_bt
                .data
                .iter()
                .zip(&serial_bt.data)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(
                same_bt,
                "matmul_a_bt differs from serial at {workers} workers"
            );
        }
    }

    #[test]
    fn small_products_take_the_serial_path_and_still_match() {
        let mut rng = SeededRng::new(6);
        let a = Tensor::randn(&[PAR_MIN_ROWS - 1, 8], &mut rng);
        let b = Tensor::randn(&[8, 5], &mut rng);
        let serial = a.matmul_with_threads(&b, 1);
        let par = a.matmul_with_threads(&b, 8);
        assert_eq!(par.data, serial.data);
    }

    #[test]
    fn matmul_threads_knob_defaults_to_serial_and_is_settable() {
        // Unless the invoking shell exported PNP_MATMUL_THREADS, the default
        // must be the serial path (this pins the opt-in contract).
        if std::env::var(MATMUL_THREADS_ENV_VAR).is_err() {
            assert_eq!(matmul_threads(), 1);
        }
        set_matmul_threads(4);
        assert_eq!(matmul_threads(), 4);
        // Degenerate request clamps to serial rather than disabling matmul.
        set_matmul_threads(0);
        assert_eq!(matmul_threads(), 1);
    }

    #[test]
    fn associativity_numerically() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let c = Tensor::randn(&[5, 2], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}
