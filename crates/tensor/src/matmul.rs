//! Matrix multiplication kernels.
//!
//! The RGCN forward/backward passes are dominated by dense `H · W` products
//! where `H` is a node-feature matrix (hundreds of rows) and `W` a small
//! square weight matrix (16–64 columns). A simple ikj-ordered kernel with a
//! transposed-operand variant is more than fast enough on a single core and
//! keeps the code dependency-free.

use crate::Tensor;

impl Tensor {
    /// Dense matrix product `self · other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul dimension mismatch: ({m}x{k}) · ({k2}x{n})");
        let mut out = Tensor::zeros(&[m, n]);
        // ikj loop order: streams through `other` rows, good cache behaviour.
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(kk);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Computes `selfᵀ · other` without materializing the transpose.
    ///
    /// Shapes: `self` is `(k x m)`, `other` is `(k x n)`, result is `(m x n)`.
    pub fn matmul_at_b(&self, other: &Tensor) -> Tensor {
        let (k, m) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(
            k, k2,
            "matmul_at_b dimension mismatch: ({k}x{m})ᵀ · ({k2}x{n})"
        );
        let mut out = Tensor::zeros(&[m, n]);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = other.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Computes `self · otherᵀ` without materializing the transpose.
    ///
    /// Shapes: `self` is `(m x k)`, `other` is `(n x k)`, result is `(m x n)`.
    pub fn matmul_a_bt(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (n, k2) = (other.rows(), other.cols());
        assert_eq!(
            k, k2,
            "matmul_a_bt dimension mismatch: ({m}x{k}) · ({n}x{k2})ᵀ"
        );
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (a, b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Matrix–vector product `self · v`, returning a 1-D tensor of length
    /// `rows`.
    pub fn matvec(&self, v: &Tensor) -> Tensor {
        assert_eq!(self.cols(), v.numel(), "matvec dimension mismatch");
        let mut out = Tensor::zeros(&[self.rows()]);
        for i in 0..self.rows() {
            out.data[i] = self.row(i).iter().zip(&v.data).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Outer product of two 1-D tensors: `(m) ⊗ (n) -> (m x n)`.
    pub fn outer(&self, other: &Tensor) -> Tensor {
        let m = self.numel();
        let n = other.numel();
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            let a = self.data[i];
            for j in 0..n {
                out.data[i * n + j] = a * other.data[j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    #[test]
    fn small_matmul_exact() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Tensor::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SeededRng::new(1);
        let a = Tensor::randn(&[5, 5], &mut rng);
        let i = Tensor::eye(5);
        let ai = a.matmul(&i);
        for (x, y) in a.data.iter().zip(&ai.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = SeededRng::new(2);
        let a = Tensor::randn(&[7, 3], &mut rng);
        let b = Tensor::randn(&[7, 4], &mut rng);
        let fast = a.matmul_at_b(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data.iter().zip(&slow.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = SeededRng::new(3);
        let a = Tensor::randn(&[4, 6], &mut rng);
        let b = Tensor::randn(&[5, 6], &mut rng);
        let fast = a.matmul_a_bt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data.iter().zip(&slow.data) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let v = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[3]);
        let out = a.matvec(&v);
        assert_eq!(out.data, vec![-2.0, -2.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0], &[3]);
        let o = a.outer(&b);
        assert_eq!(o.shape, vec![2, 3]);
        assert_eq!(o.data, vec![3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn associativity_numerically() {
        let mut rng = SeededRng::new(4);
        let a = Tensor::randn(&[3, 4], &mut rng);
        let b = Tensor::randn(&[4, 5], &mut rng);
        let c = Tensor::randn(&[5, 2], &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        for (x, y) in left.data.iter().zip(&right.data) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}
