//! Optimizers: SGD, Adam, and AdamW (with optional AMSGrad).
//!
//! Table II of the paper lists AdamW with `amsgrad` for the power-constrained
//! experiments and Adam for the EDP experiments, both at a learning rate of
//! `0.001`; these are reproduced here, plus plain SGD for baselines.

use crate::layer::Parameter;
use crate::Tensor;
use std::collections::HashMap;

/// Common interface for all optimizers.
///
/// Optimizer state (moment estimates) is keyed by parameter *name*, so the
/// set of parameters passed to `step` can be rebuilt each iteration as long
/// as names stay stable.
pub trait Optimizer {
    /// Applies one update step to all parameters and clears their gradients.
    fn step(&mut self, params: &mut [&mut Parameter]);

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by simple LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Plain stochastic gradient descent with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: HashMap<String, Tensor>,
}

impl Sgd {
    /// Creates SGD without momentum.
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with classical momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        for p in params.iter_mut() {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(p.name.clone())
                    .or_insert_with(|| Tensor::zeros(&p.value.shape));
                for (vi, gi) in v.data.iter_mut().zip(&p.grad.data) {
                    *vi = self.momentum * *vi + *gi;
                }
                for (w, vi) in p.value.data.iter_mut().zip(&v.data) {
                    *w -= self.lr * *vi;
                }
            } else {
                for (w, g) in p.value.data.iter_mut().zip(&p.grad.data) {
                    *w -= self.lr * *g;
                }
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Per-parameter Adam state.
struct AdamState {
    m: Tensor,
    v: Tensor,
    v_max: Tensor,
}

/// Shared implementation behind [`Adam`] and [`AdamW`].
struct AdamCore {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    /// Decoupled decay (AdamW) when true; L2-in-gradient (classic Adam) when false.
    decoupled: bool,
    amsgrad: bool,
    t: u64,
    state: HashMap<String, AdamState>,
}

impl AdamCore {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        self.t += 1;
        let t = self.t as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        for p in params.iter_mut() {
            let st = self
                .state
                .entry(p.name.clone())
                .or_insert_with(|| AdamState {
                    m: Tensor::zeros(&p.value.shape),
                    v: Tensor::zeros(&p.value.shape),
                    v_max: Tensor::zeros(&p.value.shape),
                });
            assert_eq!(
                st.m.shape, p.value.shape,
                "parameter {} changed shape between optimizer steps",
                p.name
            );
            for i in 0..p.value.data.len() {
                let mut g = p.grad.data[i];
                if !self.decoupled && self.weight_decay > 0.0 {
                    g += self.weight_decay * p.value.data[i];
                }
                st.m.data[i] = self.beta1 * st.m.data[i] + (1.0 - self.beta1) * g;
                st.v.data[i] = self.beta2 * st.v.data[i] + (1.0 - self.beta2) * g * g;
                let m_hat = st.m.data[i] / bc1;
                let v_hat = if self.amsgrad {
                    st.v_max.data[i] = st.v_max.data[i].max(st.v.data[i]);
                    st.v_max.data[i] / bc2
                } else {
                    st.v.data[i] / bc2
                };
                let mut update = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                if self.decoupled && self.weight_decay > 0.0 {
                    update += self.lr * self.weight_decay * p.value.data[i];
                }
                p.value.data[i] -= update;
            }
            p.zero_grad();
        }
    }
}

/// The Adam optimizer (Kingma & Ba) with classic L2 regularization.
pub struct Adam {
    core: AdamCore,
}

impl Adam {
    /// Creates Adam with the standard betas `(0.9, 0.999)` and `eps = 1e-8`.
    pub fn new(lr: f32) -> Self {
        Adam {
            core: AdamCore {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.0,
                decoupled: false,
                amsgrad: false,
                t: 0,
                state: HashMap::new(),
            },
        }
    }

    /// Enables classic (coupled) L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.core.weight_decay = wd;
        self
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        self.core.step(params);
    }

    fn learning_rate(&self) -> f32 {
        self.core.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.core.lr = lr;
    }
}

/// AdamW: Adam with decoupled weight decay, optionally with AMSGrad
/// (the configuration used by the paper's power-constrained experiments).
pub struct AdamW {
    core: AdamCore,
}

impl AdamW {
    /// Creates AdamW with weight decay `0.01` and AMSGrad disabled.
    pub fn new(lr: f32) -> Self {
        AdamW {
            core: AdamCore {
                lr,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                weight_decay: 0.01,
                decoupled: true,
                amsgrad: false,
                t: 0,
                state: HashMap::new(),
            },
        }
    }

    /// Enables the AMSGrad variant (max of past second moments).
    pub fn amsgrad(mut self) -> Self {
        self.core.amsgrad = true;
        self
    }

    /// Overrides the decoupled weight-decay coefficient.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.core.weight_decay = wd;
        self
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, params: &mut [&mut Parameter]) {
        self.core.step(params);
    }

    fn learning_rate(&self) -> f32 {
        self.core.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.core.lr = lr;
    }
}

/// Clips the global L2 norm of all gradients to `max_norm` (a standard
/// stabilization trick for small-batch GNN training).
pub fn clip_grad_norm(params: &mut [&mut Parameter], max_norm: f32) -> f32 {
    let total: f32 = params
        .iter()
        .map(|p| p.grad.data.iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm && total > 0.0 {
        let scale = max_norm / total;
        for p in params.iter_mut() {
            p.grad.scale_inplace(scale);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::SeededRng;

    /// Minimizes f(w) = ||w - target||² with each optimizer and checks
    /// convergence.
    fn converges<O: Optimizer>(mut opt: O, iters: usize) -> f32 {
        let target = Tensor::from_vec(vec![1.0, -2.0, 3.0, 0.5], &[4]);
        let mut p = Parameter::new("w", Tensor::zeros(&[4]));
        for _ in 0..iters {
            // grad of ||w - t||² is 2(w - t)
            p.grad = p.value.sub(&target).scale(2.0);
            opt.step(&mut [&mut p]);
        }
        p.value.sub(&target).norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(converges(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!(converges(Sgd::with_momentum(0.05, 0.9), 200) < 1e-3);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(converges(Adam::new(0.05), 500) < 1e-2);
    }

    #[test]
    fn adamw_amsgrad_converges_on_quadratic() {
        assert!(converges(AdamW::new(0.05).amsgrad(), 500) < 5e-2);
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        // With zero gradient, decoupled decay should shrink weights toward 0.
        let mut opt = AdamW::new(0.1).with_weight_decay(0.1);
        let mut p = Parameter::new("w", Tensor::full(&[4], 1.0));
        for _ in 0..50 {
            p.grad = Tensor::zeros(&[4]);
            opt.step(&mut [&mut p]);
        }
        assert!(p.value.data.iter().all(|&w| w.abs() < 0.7));
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut opt = Adam::new(0.01);
        let mut p = Parameter::new("w", Tensor::ones(&[3]));
        p.grad = Tensor::ones(&[3]);
        opt.step(&mut [&mut p]);
        assert!(p.grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut p = Parameter::new("w", Tensor::zeros(&[4]));
        p.grad = Tensor::full(&[4], 10.0);
        let before = clip_grad_norm(&mut [&mut p], 1.0);
        assert!(before > 1.0);
        let after: f32 = p.grad.data.iter().map(|g| g * g).sum::<f32>().sqrt();
        assert!((after - 1.0).abs() < 1e-4);
    }

    #[test]
    fn learning_rate_accessors() {
        let mut opt = Adam::new(0.001);
        assert_eq!(opt.learning_rate(), 0.001);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn optimizers_train_a_tiny_network() {
        use crate::{cross_entropy, Layer, Linear};
        let mut rng = SeededRng::new(31);
        let x = Tensor::randn(&[16, 4], &mut rng);
        // Labels defined by a simple separable rule.
        let targets: Vec<usize> = (0..16)
            .map(|r| if x.get(r, 0) > 0.0 { 1 } else { 0 })
            .collect();
        let mut layer = Linear::new(4, 2, &mut rng);
        let mut opt = AdamW::new(0.05).amsgrad();
        let mut last_loss = f32::INFINITY;
        for _ in 0..150 {
            let logits = layer.forward(&x, true);
            let (loss, dl) = cross_entropy(&logits, &targets);
            layer.backward(&dl);
            opt.step(&mut layer.parameters());
            last_loss = loss;
        }
        assert!(last_loss < 0.2, "final loss {last_loss}");
    }
}
