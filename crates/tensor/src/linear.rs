//! Fully connected (dense) layer with bias.

use crate::init::{kaiming_normal, SeededRng};
use crate::layer::{Layer, Parameter};
use crate::Tensor;

/// A dense layer computing `Y = X·W + b`.
///
/// `X` is `(batch x in_features)`, `W` is `(in_features x out_features)` and
/// `b` is broadcast over rows. The input is cached during `forward` so the
/// weight gradient can be formed in `backward`.
pub struct Linear {
    /// Weight matrix parameter.
    pub weight: Parameter,
    /// Bias vector parameter.
    pub bias: Parameter,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Kaiming-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut SeededRng) -> Self {
        Linear {
            weight: Parameter::new(
                "linear.weight",
                kaiming_normal(in_features, out_features, rng),
            ),
            bias: Parameter::new("linear.bias", Tensor::zeros(&[out_features])),
            cached_input: None,
        }
    }

    /// Creates a layer with the given prefix on parameter names (used to make
    /// checkpoint names unique inside a larger model).
    pub fn with_name(
        prefix: &str,
        in_features: usize,
        out_features: usize,
        rng: &mut SeededRng,
    ) -> Self {
        let mut l = Linear::new(in_features, out_features, rng);
        l.weight.name = format!("{prefix}.weight");
        l.bias.name = format!("{prefix}.bias");
        l
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.weight.value.rows()
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(
            input.cols(),
            self.in_features(),
            "Linear expected {} input features, got {}",
            self.in_features(),
            input.cols()
        );
        if train {
            self.cached_input = Some(input.clone());
        }
        input
            .matmul(&self.weight.value)
            .add_row_broadcast(&self.bias.value)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Linear::backward called before forward(train=true)");
        // dW = Xᵀ · dY ; db = column-sum(dY) ; dX = dY · Wᵀ
        let dw = input.matmul_at_b(grad_output);
        self.weight.grad.add_assign(&dw);
        let db = grad_output.sum_rows();
        self.bias.grad.add_assign(&db);
        grad_output.matmul_a_bt(&self.weight.value)
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the analytic gradients.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SeededRng::new(11);
        let mut layer = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], &mut rng);

        // Scalar objective: sum of outputs.
        let y = layer.forward(&x, true);
        let grad_out = Tensor::ones(&y.shape);
        let dx = layer.backward(&grad_out);

        let eps = 1e-3_f32;
        // Check dL/dW numerically for a few entries.
        for &(i, j) in &[(0usize, 0usize), (1, 1), (2, 0)] {
            let mut wp = layer.weight.value.clone();
            wp.set(i, j, wp.get(i, j) + eps);
            let mut lp = Linear::new(3, 2, &mut rng);
            lp.weight.value = wp;
            lp.bias.value = layer.bias.value.clone();
            let f_plus = lp.forward(&x, false).sum();

            let mut wm = layer.weight.value.clone();
            wm.set(i, j, wm.get(i, j) - eps);
            let mut lm = Linear::new(3, 2, &mut rng);
            lm.weight.value = wm;
            lm.bias.value = layer.bias.value.clone();
            let f_minus = lm.forward(&x, false).sum();

            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let analytic = layer.weight.grad.get(i, j);
            assert!(
                (numeric - analytic).abs() < 1e-2,
                "dW[{i},{j}]: numeric {numeric} vs analytic {analytic}"
            );
        }

        // Check dL/dX numerically for one entry.
        let (r, c) = (2usize, 1usize);
        let mut xp = x.clone();
        xp.set(r, c, xp.get(r, c) + eps);
        let f_plus = layer.forward(&xp, false).sum();
        let mut xm = x.clone();
        xm.set(r, c, xm.get(r, c) - eps);
        let f_minus = layer.forward(&xm, false).sum();
        let numeric = (f_plus - f_minus) / (2.0 * eps);
        let analytic = dx.get(r, c);
        assert!((numeric - analytic).abs() < 1e-2);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut rng = SeededRng::new(12);
        let mut layer = Linear::new(2, 3, &mut rng);
        let x = Tensor::randn(&[5, 2], &mut rng);
        let _ = layer.forward(&x, true);
        let g = Tensor::ones(&[5, 3]);
        let _ = layer.backward(&g);
        assert!(layer.bias.grad.data.iter().all(|&b| (b - 5.0).abs() < 1e-6));
    }

    #[test]
    fn output_shape() {
        let mut rng = SeededRng::new(13);
        let mut layer = Linear::new(8, 4, &mut rng);
        let x = Tensor::zeros(&[10, 8]);
        let y = layer.forward(&x, false);
        assert_eq!(y.shape, vec![10, 4]);
    }

    #[test]
    fn parameters_exposed() {
        let mut rng = SeededRng::new(14);
        let mut layer = Linear::with_name("fc1", 4, 4, &mut rng);
        let names: Vec<String> = layer.parameters().iter().map(|p| p.name.clone()).collect();
        assert_eq!(names, vec!["fc1.weight", "fc1.bias"]);
        assert_eq!(layer.num_weights(), 4 * 4 + 4);
    }
}
