//! Loss functions.
//!
//! The PnP classifier is trained with softmax cross-entropy (Table II); mean
//! squared error is used by the surrogate regressors in the BLISS-style tuner.

use crate::Tensor;

/// Row-wise numerically stable softmax.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

/// Softmax cross-entropy over integer class targets.
///
/// Returns `(mean_loss, dL/dlogits)` where the gradient is already divided by
/// the batch size so it can be fed straight into the classifier's backward
/// pass.
pub fn cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    assert_eq!(
        logits.rows(),
        targets.len(),
        "one target per logit row required"
    );
    let probs = softmax_rows(logits);
    let n = targets.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(
            t < logits.cols(),
            "target class {t} out of range for {} classes",
            logits.cols()
        );
        let p = probs.get(r, t).max(1e-12);
        loss -= p.ln();
        let g = grad.get(r, t);
        grad.set(r, t, g - 1.0);
    }
    grad.scale_inplace(1.0 / n);
    (loss / n, grad)
}

/// Cross-entropy with per-sample weights (used to emphasize rare best-config
/// classes when the label distribution is skewed).
pub fn weighted_cross_entropy(
    logits: &Tensor,
    targets: &[usize],
    weights: &[f32],
) -> (f32, Tensor) {
    assert_eq!(logits.rows(), targets.len());
    assert_eq!(targets.len(), weights.len());
    let probs = softmax_rows(logits);
    let wsum: f32 = weights.iter().sum::<f32>().max(1e-12);
    let mut loss = 0.0f32;
    let mut grad = Tensor::zeros(&logits.shape);
    for (r, (&t, &w)) in targets.iter().zip(weights).enumerate() {
        let p = probs.get(r, t).max(1e-12);
        loss -= w * p.ln();
        for c in 0..logits.cols() {
            let indicator = if c == t { 1.0 } else { 0.0 };
            grad.set(r, c, w * (probs.get(r, c) - indicator) / wsum);
        }
    }
    (loss / wsum, grad)
}

/// Mean squared error between predictions and targets of identical shape.
///
/// Returns `(mean_loss, dL/dpred)`.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape, target.shape, "mse shape mismatch");
    let n = pred.numel() as f32;
    let diff = pred.sub(target);
    let loss = diff.data.iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

/// Classification accuracy: fraction of rows whose argmax equals the target.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(targets).filter(|(p, t)| *p == *t).count();
    correct as f32 / targets.len() as f32
}

/// Top-k accuracy: fraction of rows where the target is among the k highest
/// logits. The paper's evaluation effectively cares about near-optimal
/// configurations, so top-k is a useful training diagnostic.
pub fn topk_accuracy(logits: &Tensor, targets: &[usize], k: usize) -> f32 {
    if targets.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| row[b].total_cmp(&row[a]));
        if idx.iter().take(k).any(|&i| i == t) {
            correct += 1;
        }
    }
    correct as f32 / targets.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_ranking_is_total_and_pinned_under_nan_and_signed_zero() {
        // NaN must not panic the comparator. Under `total_cmp`, NaN sorts
        // above +inf, so descending rank order is pinned: NaN, 2.0, 0.0,
        // -0.0, -1.0 — the target at column 1 (2.0) is within top-2.
        let logits = Tensor::from_rows(&[vec![0.0, 2.0, f32::NAN, -0.0, -1.0]]);
        assert_eq!(topk_accuracy(&logits, &[2], 1), 1.0); // NaN column ranks first
        assert_eq!(topk_accuracy(&logits, &[1], 2), 1.0);
        assert_eq!(topk_accuracy(&logits, &[1], 1), 0.0);
        // Signed zero: total_cmp orders -0.0 below 0.0, so top-3 holds
        // column 0 (+0.0) and top-4 is needed for column 3 (-0.0).
        assert_eq!(topk_accuracy(&logits, &[0], 3), 1.0);
        assert_eq!(topk_accuracy(&logits, &[3], 3), 0.0);
        assert_eq!(topk_accuracy(&logits, &[3], 4), 1.0);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let p = softmax_rows(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        assert!(p.get(0, 2) > p.get(0, 1));
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0]]);
        let b = Tensor::from_rows(&[vec![1001.0, 1002.0, 1003.0]]);
        let pa = softmax_rows(&a);
        let pb = softmax_rows(&b);
        for (x, y) in pa.data.iter().zip(&pb.data) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let logits = Tensor::from_rows(&[vec![100.0, 0.0], vec![0.0, 100.0]]);
        let (loss, _) = cross_entropy(&logits, &[0, 1]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_k() {
        let logits = Tensor::zeros(&[1, 4]);
        let (loss, _) = cross_entropy(&logits, &[2]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_rows(&[vec![0.3, -0.2, 0.7]]);
        let targets = vec![2usize];
        let (_, grad) = cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for c in 0..3 {
            let mut lp = logits.clone();
            lp.set(0, c, lp.get(0, c) + eps);
            let (fp, _) = cross_entropy(&lp, &targets);
            let mut lm = logits.clone();
            lm.set(0, c, lm.get(0, c) - eps);
            let (fm, _) = cross_entropy(&lm, &targets);
            let numeric = (fp - fm) / (2.0 * eps);
            assert!(
                (numeric - grad.get(0, c)).abs() < 1e-3,
                "class {c}: numeric {numeric} vs analytic {}",
                grad.get(0, c)
            );
        }
    }

    #[test]
    fn mse_zero_for_identical() {
        let a = Tensor::ones(&[2, 2]);
        let (loss, grad) = mse_loss(&a, &a);
        assert_eq!(loss, 0.0);
        assert!(grad.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_rows(&[vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]]);
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn topk_accuracy_is_monotone_in_k() {
        let logits = Tensor::from_rows(&[vec![0.5, 0.3, 0.2], vec![0.1, 0.2, 0.7]]);
        let targets = vec![1usize, 0usize];
        let a1 = topk_accuracy(&logits, &targets, 1);
        let a2 = topk_accuracy(&logits, &targets, 2);
        let a3 = topk_accuracy(&logits, &targets, 3);
        assert!(a1 <= a2 && a2 <= a3);
        assert_eq!(a3, 1.0);
    }

    #[test]
    fn weighted_cross_entropy_reduces_to_plain_with_unit_weights() {
        let logits = Tensor::from_rows(&[vec![0.1, 0.2, 0.3], vec![1.0, -1.0, 0.0]]);
        let targets = vec![0usize, 2usize];
        let (l1, _) = cross_entropy(&logits, &targets);
        let (l2, _) = weighted_cross_entropy(&logits, &targets, &[1.0, 1.0]);
        assert!((l1 - l2 * 1.0).abs() < 1e-5);
    }
}
