//! The [`Layer`] trait and the [`Parameter`] container shared by all layers.

use crate::Tensor;
use serde::{Deserialize, Serialize};

/// A trainable parameter: a value tensor plus its accumulated gradient.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Parameter {
    /// Stable name used when saving/loading weights (e.g. `"rgcn0.w_rel1"`).
    pub name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Parameter {
    /// Creates a parameter with a zeroed gradient of the same shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(&value.shape);
        Parameter {
            name: name.into(),
            value,
            grad,
        }
    }

    /// Resets the gradient to zero (call between optimizer steps).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar weights in this parameter.
    pub fn numel(&self) -> usize {
        self.value.numel()
    }
}

/// Minimal interface shared by all feed-forward layers.
///
/// `forward` takes `train: bool` so layers such as [`crate::Dropout`] can
/// behave differently at training vs. inference time. `backward` consumes the
/// gradient w.r.t. the layer output and returns the gradient w.r.t. the layer
/// input, accumulating parameter gradients internally.
pub trait Layer {
    /// Forward pass.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor;

    /// Backward pass; returns gradient with respect to the layer input.
    fn backward(&mut self, grad_output: &Tensor) -> Tensor;

    /// Mutable access to all trainable parameters (may be empty).
    fn parameters(&mut self) -> Vec<&mut Parameter> {
        Vec::new()
    }

    /// Zeroes all parameter gradients.
    fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars in the layer.
    fn num_weights(&mut self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_starts_with_zero_grad() {
        let p = Parameter::new("w", Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape, vec![2, 3]);
        assert!(p.grad.data.iter().all(|&x| x == 0.0));
        assert_eq!(p.numel(), 6);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Parameter::new("w", Tensor::ones(&[2, 2]));
        p.grad = Tensor::full(&[2, 2], 3.0);
        p.zero_grad();
        assert!(p.grad.data.iter().all(|&x| x == 0.0));
    }
}
