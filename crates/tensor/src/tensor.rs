//! The core dense [`Tensor`] type.
//!
//! Tensors are row-major `f32` buffers with a 1-D or 2-D shape. Shapes are
//! intentionally restricted to what the PnP model needs — node-feature
//! matrices, weight matrices, bias vectors and logit matrices are all 2-D (a
//! 1-D tensor is treated as a single row where it matters).

use crate::init::SeededRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major `f32` tensor with up to two dimensions.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Flattened row-major data, `rows * cols` elements.
    pub data: Vec<f32>,
    /// Shape: `[len]` for vectors, `[rows, cols]` for matrices.
    pub shape: Vec<usize>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    ///
    /// # Panics
    /// Panics if `shape` is empty or has more than 2 dimensions.
    pub fn zeros(shape: &[usize]) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(
            !shape.is_empty() && shape.len() <= 2,
            "only 1-D and 2-D tensors are supported, got shape {shape:?}"
        );
        let numel: usize = shape.iter().product();
        Tensor {
            data: vec![value; numel],
            shape: shape.to_vec(),
        }
    }

    /// Builds a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        assert!(
            !shape.is_empty() && shape.len() <= 2,
            "only 1-D and 2-D tensors are supported, got shape {shape:?}"
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Builds a 2-D tensor from a slice of rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "row {i} has length {} != {cols}", r.len());
            data.extend_from_slice(r);
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Creates a tensor with values drawn from a standard normal distribution.
    pub fn randn(shape: &[usize], rng: &mut SeededRng) -> Self {
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| rng.normal()).collect();
        Tensor::from_vec(data, shape)
    }

    /// Creates a tensor with values drawn uniformly from `[lo, hi)`.
    pub fn uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SeededRng) -> Self {
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| rng.uniform(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Identity matrix of size `n × n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Number of rows (a 1-D tensor is a single row).
    pub fn rows(&self) -> usize {
        if self.shape.len() == 1 {
            1
        } else {
            self.shape[0]
        }
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        if self.shape.len() == 1 {
            self.shape[0]
        } else {
            self.shape[1]
        }
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns element `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows() && c < self.cols());
        self.data[r * self.cols() + c]
    }

    /// Sets element `(r, c)` to `v`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows() && c < self.cols());
        let cols = self.cols();
        self.data[r * cols + c] = v;
    }

    /// Returns row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Returns row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let cols = self.cols();
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copies the contents of `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols());
        self.row_mut(r).copy_from_slice(src);
    }

    /// Adds `src` element-wise into row `r`.
    pub fn add_to_row(&mut self, r: usize, src: &[f32]) {
        assert_eq!(src.len(), self.cols());
        for (d, s) in self.row_mut(r).iter_mut().zip(src) {
            *d += *s;
        }
    }

    /// Adds `scale * src` element-wise into row `r`.
    pub fn axpy_row(&mut self, r: usize, scale: f32, src: &[f32]) {
        assert_eq!(src.len(), self.cols());
        for (d, s) in self.row_mut(r).iter_mut().zip(src) {
            *d += scale * *s;
        }
    }

    /// Returns a new tensor containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Tensor {
        let cols = self.cols();
        let mut out = Tensor::zeros(&[indices.len(), cols]);
        for (dst, &src) in indices.iter().enumerate() {
            out.set_row(dst, self.row(src));
        }
        out
    }

    /// Returns a copy reshaped to `shape` (element count must match).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Returns the matrix transpose.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    /// Concatenates two tensors along the column axis (same number of rows).
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.rows(),
            other.rows(),
            "concat_cols requires matching row counts"
        );
        let (r, c1, c2) = (self.rows(), self.cols(), other.cols());
        let mut out = Tensor::zeros(&[r, c1 + c2]);
        for i in 0..r {
            out.row_mut(i)[..c1].copy_from_slice(self.row(i));
            out.row_mut(i)[c1..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Stacks row vectors (1-D tensors of equal length) into a matrix.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows requires at least one tensor");
        let cols = rows[0].numel();
        let mut out = Tensor::zeros(&[rows.len(), cols]);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.numel(), cols, "all stacked rows must have equal length");
            out.set_row(i, &r.data);
        }
        out
    }

    /// Frobenius / L2 norm of the whole tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Fills every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.iter_mut().for_each(|x| *x = v);
    }

    /// True if all elements are finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, ", data={:?}", self.data)?;
        } else {
            write!(f, ", data=[{:.4}, {:.4}, ...]", self.data[0], self.data[1])?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert_eq!(t.numel(), 12);
        assert!(t.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn vector_is_single_row() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        assert_eq!(t.rows(), 1);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(1, 2, 7.5);
        assert_eq!(t.get(1, 2), 7.5);
        assert_eq!(t.get(0, 0), 0.0);
    }

    #[test]
    fn transpose_involution() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let tt = t.transpose();
        assert_eq!(tt.shape, vec![3, 2]);
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transpose(), t);
    }

    #[test]
    fn select_rows_picks_in_order() {
        let t = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]);
        let s = t.select_rows(&[2, 0]);
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
    }

    #[test]
    fn concat_cols_widths_add() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::full(&[2, 2], 2.0);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape, vec![2, 5]);
        assert_eq!(c.row(0), &[1.0, 1.0, 1.0, 2.0, 2.0]);
    }

    #[test]
    fn eye_diagonal() {
        let i = Tensor::eye(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(1, 1), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn stack_rows_builds_matrix() {
        let rows = vec![
            Tensor::from_vec(vec![1.0, 2.0], &[2]),
            Tensor::from_vec(vec![3.0, 4.0], &[2]),
        ];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape, vec![2, 2]);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn axpy_row_accumulates() {
        let mut t = Tensor::ones(&[2, 2]);
        t.axpy_row(0, 2.0, &[1.0, 3.0]);
        assert_eq!(t.row(0), &[3.0, 7.0]);
        assert_eq!(t.row(1), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = SeededRng::new(7);
        let mut r2 = SeededRng::new(7);
        let a = Tensor::randn(&[4, 4], &mut r1);
        let b = Tensor::randn(&[4, 4], &mut r2);
        assert_eq!(a, b);
    }
}
