//! Token-embedding lookup table.
//!
//! Node text in the PROGRAML-style code graphs is mapped to a vocabulary id
//! (see `pnp-graph::vocab`); this layer turns those ids into dense vectors
//! that feed the first RGCN layer, mirroring the "IR text to tensor"
//! embedding described in Section III-D1 of the paper.

use crate::init::SeededRng;
use crate::layer::{Layer, Parameter};
use crate::Tensor;

/// A learnable `vocab_size x dim` embedding table with scatter-add backward.
pub struct Embedding {
    /// The embedding matrix parameter.
    pub table: Parameter,
    cached_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table initialized from `N(0, 0.1)`.
    pub fn new(vocab_size: usize, dim: usize, rng: &mut SeededRng) -> Self {
        let mut init = Tensor::randn(&[vocab_size, dim], rng);
        init.scale_inplace(0.1);
        Embedding {
            table: Parameter::new("embedding.table", init),
            cached_ids: None,
        }
    }

    /// Vocabulary size (number of rows).
    pub fn vocab_size(&self) -> usize {
        self.table.value.rows()
    }

    /// Embedding dimension (number of columns).
    pub fn dim(&self) -> usize {
        self.table.value.cols()
    }

    /// Looks up a batch of token ids, producing an `(ids.len() x dim)` matrix.
    ///
    /// Out-of-vocabulary ids are clamped to the last row (the `<unk>` slot by
    /// convention in `pnp-graph`).
    pub fn lookup(&mut self, ids: &[usize], train: bool) -> Tensor {
        let vs = self.vocab_size();
        let clamped: Vec<usize> = ids.iter().map(|&i| i.min(vs - 1)).collect();
        let out = self.table.value.select_rows(&clamped);
        if train {
            self.cached_ids = Some(clamped);
        }
        out
    }

    /// Backward pass: scatter-adds the output gradient rows into the table.
    pub fn backward_ids(&mut self, grad_output: &Tensor) {
        let ids = self
            .cached_ids
            .as_ref()
            .expect("Embedding::backward_ids called before lookup(train=true)");
        assert_eq!(grad_output.rows(), ids.len());
        for (row, &id) in ids.iter().enumerate() {
            self.table.grad.add_to_row(id, grad_output.row(row));
        }
    }
}

impl Layer for Embedding {
    /// The `Layer` forward treats the input tensor's first column as token
    /// ids (rounded); prefer [`Embedding::lookup`] when you already have ids.
    fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        let ids: Vec<usize> = (0..input.rows())
            .map(|r| input.get(r, 0).max(0.0) as usize)
            .collect();
        self.lookup(&ids, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Tensor {
        self.backward_ids(grad_output);
        // Token ids are discrete; there is no gradient to propagate further.
        Tensor::zeros(&[grad_output.rows(), 1])
    }

    fn parameters(&mut self) -> Vec<&mut Parameter> {
        vec![&mut self.table]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_selects_rows() {
        let mut rng = SeededRng::new(21);
        let mut emb = Embedding::new(10, 4, &mut rng);
        let out = emb.lookup(&[3, 3, 7], false);
        assert_eq!(out.shape, vec![3, 4]);
        assert_eq!(out.row(0), out.row(1));
        assert_eq!(out.row(0), emb.table.value.row(3));
        assert_eq!(out.row(2), emb.table.value.row(7));
    }

    #[test]
    fn out_of_vocab_clamps_to_last_row() {
        let mut rng = SeededRng::new(22);
        let mut emb = Embedding::new(5, 2, &mut rng);
        let out = emb.lookup(&[999], false);
        assert_eq!(out.row(0), emb.table.value.row(4));
    }

    #[test]
    fn backward_scatter_adds() {
        let mut rng = SeededRng::new(23);
        let mut emb = Embedding::new(4, 3, &mut rng);
        let _ = emb.lookup(&[1, 1, 2], true);
        let g = Tensor::ones(&[3, 3]);
        emb.backward_ids(&g);
        assert!(emb
            .table
            .grad
            .row(1)
            .iter()
            .all(|&x| (x - 2.0).abs() < 1e-6));
        assert!(emb
            .table
            .grad
            .row(2)
            .iter()
            .all(|&x| (x - 1.0).abs() < 1e-6));
        assert!(emb.table.grad.row(0).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn exposes_single_parameter() {
        let mut rng = SeededRng::new(24);
        let mut emb = Embedding::new(8, 8, &mut rng);
        assert_eq!(emb.parameters().len(), 1);
        assert_eq!(emb.num_weights(), 64);
    }
}
