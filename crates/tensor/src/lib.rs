//! # pnp-tensor
//!
//! A small, dependency-light dense tensor and neural-network library that
//! provides exactly the building blocks needed by the PnP tuner's RGCN model:
//!
//! * [`Tensor`] — a row-major 2-D (or 1-D) `f32` tensor with elementwise ops,
//!   reductions, and matrix multiplication.
//! * Layers with hand-written backward passes: [`Linear`], [`Embedding`],
//!   activations ([`ReLU`], [`LeakyReLU`], [`Sigmoid`], [`Tanh`]) and
//!   [`Dropout`].
//! * Losses: softmax [`cross_entropy`] and [`mse_loss`].
//! * Optimizers: [`Sgd`], [`Adam`], and [`AdamW`] (with optional `amsgrad`),
//!   matching the hyperparameters in Table II of the paper.
//! * Weight (de)serialization for the transfer-learning experiment
//!   (train GNN on Haswell, re-train only the dense layers on Skylake).
//!
//! The library is deliberately *not* a general autograd system: every layer
//! caches what it needs during `forward` and implements an explicit
//! `backward`. This keeps the code auditable and fast on a single core.
//!
//! ## Example
//!
//! ```
//! use pnp_tensor::{Tensor, Linear, Layer, ReLU, cross_entropy, Adam, Optimizer};
//! use pnp_tensor::init::SeededRng;
//!
//! let mut rng = SeededRng::new(42);
//! // Parameter names key optimizer state, so give each layer a unique prefix.
//! let mut l1 = Linear::with_name("fc1", 4, 8, &mut rng);
//! let mut act = ReLU::new();
//! let mut l2 = Linear::with_name("fc2", 8, 3, &mut rng);
//! let x = Tensor::randn(&[2, 4], &mut rng);
//! let targets = vec![0usize, 2usize];
//!
//! let mut opt = Adam::new(1e-2);
//! for _ in 0..50 {
//!     let h = act.forward(&l1.forward(&x, true), true);
//!     let logits = l2.forward(&h, true);
//!     let (loss, dlogits) = cross_entropy(&logits, &targets);
//!     let dh = l2.backward(&dlogits);
//!     let dl1 = act.backward(&dh);
//!     l1.backward(&dl1);
//!     let mut params = Vec::new();
//!     params.extend(l1.parameters());
//!     params.extend(l2.parameters());
//!     opt.step(&mut params);
//!     assert!(loss.is_finite());
//! }
//! ```

pub mod activation;
pub mod dropout;
pub mod embedding;
pub mod init;
pub mod layer;
pub mod linear;
pub mod loss;
pub mod matmul;
pub mod ops;
pub mod optim;
pub mod serialize;
pub mod tensor;

pub use activation::{LeakyReLU, ReLU, Sigmoid, Tanh};
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use init::SeededRng;
pub use layer::{Layer, Parameter};
pub use linear::Linear;
pub use loss::{cross_entropy, mse_loss, softmax_rows};
pub use matmul::{matmul_threads, set_matmul_threads, MATMUL_THREADS_ENV_VAR, PAR_MIN_ROWS};
pub use optim::{Adam, AdamW, Optimizer, Sgd};
pub use serialize::{load_parameters, save_parameters, ParameterBundle};
pub use tensor::Tensor;
