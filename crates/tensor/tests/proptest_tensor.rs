//! Property-based tests for the tensor core: algebraic identities that must
//! hold for arbitrary (finite, bounded) inputs.

use pnp_tensor::ops::geometric_mean;
use pnp_tensor::{softmax_rows, Tensor};
use proptest::prelude::*;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| Tensor::from_vec(data, &[rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_is_commutative(a in small_matrix(3, 4), b in small_matrix(3, 4)) {
        let ab = a.add(&b);
        let ba = b.add(&a);
        for (x, y) in ab.data.iter().zip(&ba.data) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution(a in small_matrix(4, 5)) {
        let back = a.transpose().transpose();
        prop_assert_eq!(back.shape, a.shape.clone());
        for (x, y) in back.data.iter().zip(&a.data) {
            prop_assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in small_matrix(3, 3),
        b in small_matrix(3, 3),
        c in small_matrix(3, 3),
    ) {
        // a·(b + c) == a·b + a·c
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-2, "{} vs {}", x, y);
        }
    }

    #[test]
    fn matmul_transpose_identity(a in small_matrix(4, 3), b in small_matrix(3, 5)) {
        // (a·b)ᵀ == bᵀ·aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (x, y) in lhs.data.iter().zip(&rhs.data) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn scale_then_sum_matches_sum_then_scale(a in small_matrix(2, 6), s in -3.0f32..3.0) {
        let lhs = a.scale(s).sum();
        let rhs = a.sum() * s;
        prop_assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(a in small_matrix(3, 7)) {
        let p = softmax_rows(&a);
        for r in 0..p.rows() {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn geometric_mean_bounded_by_min_max(values in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = geometric_mean(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(g >= lo * 0.999 && g <= hi * 1.001);
    }

    #[test]
    fn select_rows_preserves_row_content(a in small_matrix(5, 3), idx in prop::collection::vec(0usize..5, 1..8)) {
        let s = a.select_rows(&idx);
        prop_assert_eq!(s.rows(), idx.len());
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(s.row(out_row), a.row(src));
        }
    }
}
