//! Scenario 2 walkthrough: jointly tune the power cap and the OpenMP
//! configuration to minimize the energy-delay product of a Quicksilver-style
//! irregular region, and show why "race to halt" does not hold.
//!
//! Run with:
//! ```text
//! cargo run --release --example edp_tuning
//! ```

use pnp_benchmarks::builders::lookup_kernel;
use pnp_machine::skylake;
use pnp_tuners::{DefaultBaseline, Objective, OracleTuner, SearchSpace, SimEvaluator};

fn main() {
    let machine = skylake();
    let space = SearchSpace::for_machine(&machine);
    let region = lookup_kernel(
        "demo_tracking",
        1_200_000,
        4.0e8,
        "segment_outcome",
        24,
        1.5,
    );

    let evaluator = SimEvaluator::new(machine.clone(), region.profile.clone());
    let oracle = OracleTuner::new(&space);

    // Default configuration at TDP — the baseline of Figures 6 and 7.
    let baseline =
        DefaultBaseline::new(&space, machine.tdp_watts).sample(&evaluator, &Objective::Edp);
    println!(
        "default @ TDP: {:.3} ms, {:.1} J, EDP {:.3}",
        baseline.time_s * 1e3,
        baseline.energy_j,
        baseline.edp()
    );

    // Exhaustive sweep of the joint space: fastest, greenest, and best-EDP points.
    let sweep = oracle.sweep(&evaluator, &Objective::Edp);
    let fastest = sweep
        .iter()
        .min_by(|a, b| a.1.time_s.total_cmp(&b.1.time_s))
        .unwrap();
    let greenest = sweep
        .iter()
        .min_by(|a, b| a.1.energy_j.total_cmp(&b.1.energy_j))
        .unwrap();
    let best_edp = sweep
        .iter()
        .min_by(|a, b| a.1.edp().total_cmp(&b.1.edp()))
        .unwrap();

    let describe = |name: &str, point: &pnp_tuners::ConfigPoint, s: &pnp_machine::EnergySample| {
        println!(
            "{name:>10}: {} @ {:.0} W -> {:.3} ms, {:.1} J | speedup {:.2}x, greenup {:.2}x, EDP improvement {:.2}x",
            point.omp,
            point.power_watts,
            s.time_s * 1e3,
            s.energy_j,
            baseline.time_s / s.time_s,
            baseline.energy_j / s.energy_j,
            baseline.edp() / s.edp(),
        );
    };
    describe("fastest", &fastest.0, &fastest.1);
    describe("greenest", &greenest.0, &greenest.1);
    describe("best EDP", &best_edp.0, &best_edp.1);

    if fastest.0 != greenest.0 {
        println!("\nrace-to-halt does NOT hold here: the fastest point and the most energy-efficient point differ.");
    }
    println!(
        "the best-EDP point trades {:.0}% of the fastest point's speed for {:.0}% less energy.",
        100.0 * (1.0 - fastest.1.time_s / best_edp.1.time_s).abs(),
        100.0 * (1.0 - best_edp.1.energy_j / fastest.1.energy_j)
    );
}
