//! Run a real kernel on the host with the library's OpenMP-style executor,
//! exercising every scheduling policy the tuner can select.
//!
//! Run with:
//! ```text
//! cargo run --release --example openmp_executor
//! ```

use pnp_openmp::{parallel_map_indexed, OmpConfig, Schedule, ThreadPool, Threads};
use std::time::Instant;

/// A deliberately imbalanced workload: later iterations do more work, like
//  the triangular loops in LU/Cholesky.
fn work(i: usize) -> f64 {
    let reps = 10 + i / 50;
    let mut acc = i as f64;
    for k in 0..reps {
        acc = (acc + k as f64).sqrt() + 1.0;
    }
    acc
}

fn main() {
    let n = 200_000;
    let serial: f64 = (0..n).map(work).sum();
    println!("serial reference sum = {serial:.3}");

    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    println!("running with {threads} worker threads\n");
    println!(
        "{:<28} {:>12} {:>10}",
        "configuration", "time (ms)", "correct"
    );

    for schedule in [Schedule::Static, Schedule::Dynamic, Schedule::Guided] {
        for chunk in [None, Some(64), Some(1024)] {
            let config = OmpConfig::new(threads, schedule, chunk);
            let pool = ThreadPool::new(config);
            let start = Instant::now();
            let sum = pool.parallel_reduce_sum(n, work);
            let elapsed = start.elapsed().as_secs_f64() * 1e3;
            let correct = (sum - serial).abs() / serial < 1e-9;
            println!(
                "{:<28} {:>12.2} {:>10}",
                config.to_string(),
                elapsed,
                correct
            );
        }
    }

    // The same executor also powers the data-parallel layer used by the
    // exhaustive dataset sweep: an order-preserving map whose output does not
    // depend on the worker count.
    let mapped = parallel_map_indexed(8, Threads::Auto, |i| work(i * 1000));
    let expected: Vec<f64> = (0..8).map(|i| work(i * 1000)).collect();
    assert_eq!(mapped, expected);
    println!("\nparallel_map over 8 jobs matches the serial map, in order.");

    println!("\nNote: on an imbalanced loop like this, dynamic/guided schedules");
    println!("with a moderate chunk size usually beat the static default —");
    println!("exactly the effect the PnP tuner learns to predict from the code graph.");
}
