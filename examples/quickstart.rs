//! Quickstart: describe an OpenMP region, build its flow-aware code graph,
//! train a PnP tuner on the benchmark suite, and ask it for the best
//! configuration under a 40 W power cap — without executing the region.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use pnp_benchmarks::builders::stencil2d_kernel;
use pnp_benchmarks::full_suite;
use pnp_core::dataset::Dataset;
use pnp_core::pnp::{PnPTuner, TunerMode};
use pnp_core::training::TrainSettings;
use pnp_graph::{EncodedGraph, GraphFeatures, Vocabulary};
use pnp_ir::lower_kernel;
use pnp_machine::haswell;
use pnp_openmp::{simulate_region, Threads};

fn main() {
    run();
}

/// The whole quickstart pipeline; also exercised by the `#[test]` below so
/// `cargo test --examples` keeps this walkthrough working.
fn run() {
    // 1. Describe a new OpenMP region (a 5-point stencil the tuner has never
    //    seen) and turn it into a flow-aware code graph.
    let region = stencil2d_kernel("user_stencil", 2048, 2048, 5);
    let module = lower_kernel("user_app", std::slice::from_ref(&region.source));
    let graph = pnp_graph::build_region_graph(&module, "user_stencil").expect("region lowered");
    let features = GraphFeatures::of(&graph);
    println!(
        "code graph: {} nodes, {} edges ({} control / {} data / {} call)",
        features.num_nodes,
        features.num_edges,
        features.control_edges,
        features.data_edges,
        features.call_edges
    );

    // 2. Build the training dataset (exhaustive sweep of the benchmark suite
    //    on the simulated Haswell testbed) and train the static PnP tuner for
    //    the 40 W power cap.
    let machine = haswell();
    // The sweep fans out one job per region over the in-tree OpenMP executor.
    // `Threads::from_env` reads `PNP_SWEEP_THREADS` (default: one worker per
    // available core) — the same knob `Dataset::build` resolves internally.
    // The dataset bytes are identical for any worker count.
    let sweep_threads = Threads::from_env();
    println!(
        "building dataset on {} (68 regions x 504 configs, {} sweep workers)...",
        machine.name,
        sweep_threads.resolve()
    );
    let dataset = Dataset::build_with_threads(
        &machine,
        &full_suite(),
        &Vocabulary::standard(),
        sweep_threads,
    );
    let settings = TrainSettings::quick();
    println!("training the PnP tuner ({} epochs)...", settings.epochs);
    let mut tuner = PnPTuner::train(
        &dataset,
        TunerMode::PowerConstrained { power_idx: 0 },
        &settings,
    );

    // 3. Ask for the best configuration for the unseen region.
    let encoded = EncodedGraph::encode(&graph, &Vocabulary::standard());
    let prediction = tuner.predict(&encoded);
    println!(
        "predicted configuration at {:.0} W: {}",
        prediction.power_watts, prediction.omp
    );

    // 4. Check what the prediction buys us against the default configuration.
    let default = pnp_openmp::default_config(&machine);
    let cap = prediction.power_watts;
    let tuned = simulate_region(&machine, &region.profile, &prediction.omp, cap);
    let base = simulate_region(&machine, &region.profile, &default, cap);
    println!(
        "default ({}|{:.0} W): {:.3} ms, {:.1} J",
        default,
        cap,
        base.time_s * 1e3,
        base.energy_j
    );
    println!(
        "tuned   ({}|{:.0} W): {:.3} ms, {:.1} J  -> speedup {:.2}x, greenup {:.2}x",
        prediction.omp,
        cap,
        tuned.time_s * 1e3,
        tuned.energy_j,
        base.time_s / tuned.time_s,
        base.energy_j / tuned.energy_j
    );
}

#[cfg(test)]
mod tests {
    #[test]
    fn quickstart_pipeline_runs() {
        super::run();
    }
}
