//! Scenario 1 walkthrough: compare the tuners on one memory-bound and one
//! compute-bound region under every Haswell power cap.
//!
//! Run with:
//! ```text
//! cargo run --release --example power_constrained_tuning
//! ```

use pnp_benchmarks::builders::{matmul_kernel, streaming_kernel};
use pnp_machine::haswell;
use pnp_tuners::{
    BlissTuner, DefaultBaseline, Objective, OpenTunerLike, OracleTuner, RegionEvaluator,
    SearchSpace, SimEvaluator,
};

fn main() {
    let machine = haswell();
    let space = SearchSpace::for_machine(&machine);
    let regions = vec![
        (
            "gemm-like (compute bound)",
            matmul_kernel("demo_gemm", 700, 700, 700),
        ),
        (
            "stream-like (memory bound)",
            streaming_kernel("demo_stream", 2_000_000, 3, 1.0),
        ),
    ];

    for (label, region) in &regions {
        println!("\n=== {label} ===");
        println!(
            "{:<10} {:>12} {:>12} {:>12} {:>12}",
            "cap (W)", "oracle", "bliss", "opentuner", "default"
        );
        for &cap in &space.power_levels {
            let objective = Objective::TimeAtPower { power_watts: cap };
            let make_eval = || SimEvaluator::new(machine.clone(), region.profile.clone());

            let eval = make_eval();
            let oracle = OracleTuner::new(&space).tune(&eval, &objective);
            let eval = make_eval();
            let bliss = BlissTuner::new(&space, 1).tune(&eval, &objective);
            let eval = make_eval();
            let opentuner = OpenTunerLike::new(&space, 2).tune(&eval, &objective);
            let eval = make_eval();
            let default = DefaultBaseline::new(&space, machine.tdp_watts).sample(&eval, &objective);

            println!(
                "{:<10.0} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>10.3}ms",
                cap,
                oracle.best_sample.time_s * 1e3,
                bliss.best_sample.time_s * 1e3,
                opentuner.best_sample.time_s * 1e3,
                default.time_s * 1e3,
            );
            println!(
                "{:<10} best config: {} (speedup over default {:.2}x, {} sampling runs for BLISS, {} for OpenTuner)",
                "",
                oracle.best_point.omp,
                default.time_s / oracle.best_sample.time_s,
                bliss.evaluations,
                opentuner.evaluations,
            );
            let _ = eval.evaluations();
        }
    }
}
