//! # pnp
//!
//! Facade crate for the PnP ("Predict and Pick") power-constrained OpenMP
//! autotuner reproduction. It re-exports every layer of the stack under one
//! roof and hosts the repository-level integration tests (`tests/`) and the
//! runnable walkthroughs (`examples/`).
//!
//! The stack, bottom to top (see `ARCHITECTURE.md` for the dataflow):
//!
//! * [`tensor`] — dense `f32` tensors, layers, losses, optimizers.
//! * [`ir`] — kernel DSL and LLVM-flavoured IR with OpenMP region outlining.
//! * [`graph`] — PROGRAML-style flow-aware code graphs built from the IR.
//! * [`gnn`] — the RGCN + dense-classifier model over those graphs.
//! * [`machine`] — Haswell/Skylake testbed models: power caps, DVFS, caches,
//!   counters, energy accounting.
//! * [`openmp`] — OpenMP configurations, schedules, a real thread-pool
//!   executor, and the analytic execution simulator.
//! * [`benchmarks`] — the 30-application / 68-region evaluation suite.
//! * [`tuners`] — the search space, objectives, and baseline tuners
//!   (oracle, default, random, BLISS-style, OpenTuner-like).
//! * [`store`] — the content-addressed artifact store that persists built
//!   datasets and trained model weights across runs and CI jobs.
//! * [`core`] — datasets, training pipelines, the PnP tuner itself, and one
//!   driver per paper experiment.
//! * [`serve`] — the tuning-as-a-service daemon: a model registry over the
//!   store, a length-prefixed socket protocol with request batching, and
//!   the `pnp_load` load generator (see `SERVING.md`).
//!
//! ## Quickstart
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

pub use pnp_benchmarks as benchmarks;
pub use pnp_core as core;
pub use pnp_gnn as gnn;
pub use pnp_graph as graph;
pub use pnp_ir as ir;
pub use pnp_machine as machine;
pub use pnp_openmp as openmp;
pub use pnp_serve as serve;
pub use pnp_store as store;
pub use pnp_tensor as tensor;
pub use pnp_tuners as tuners;
